"""Recurrent layers: LSTM cell, single-layer LSTM, and stacked LSTM.

The cells expose a *step* API (one time step at a time) because the
DeepAR-style decoders in this repository interleave sampling with the
recurrence.  Teacher-forced training and encoding do not need per-step
sampling, so the cells additionally provide a fused full-sequence path
(``forward_sequence`` / ``backward_sequence``): the input projections of
all ``T`` steps run as one ``(B*T, 4H)`` GEMM, the per-step caches live in
preallocated ``(B, T, .)`` tensors instead of Python lists, the four gate
backwards write into one preallocated ``dgates`` buffer, and the
``w_x``/``w_h`` gradients accumulate through two reshaped batched GEMMs
over the whole sequence.  The slower ``forward``/``backward`` helpers on
top of the step API are kept as the stepwise reference implementation.

Gate layout in all weight matrices is ``[input, forget, cell, output]``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import initializers as init
from .activations import sigmoid, sigmoid_dense
from .kernels import stable_matmul
from .module import Module, Parameter

__all__ = ["LSTMState", "LSTMCell", "LSTMDecodeContext", "StackedLSTM"]

# (hidden, cell) pair for one layer
LSTMState = Tuple[np.ndarray, np.ndarray]


class LSTMDecodeContext:
    """Preallocated buffers + permuted weight copies for one cell's decode loop.

    Built by :meth:`LSTMCell.begin_decode` and consumed by
    :meth:`LSTMCell.step_decode`; holds the ``[i, f, o, g]``-permuted weight
    copies (sigmoid gates contiguous), the running ``(h, c)`` state, and
    every per-step scratch tensor, so advancing the decode by one lap
    allocates nothing.
    """

    __slots__ = ("w_x", "w_h", "bias", "h", "c", "gates", "hw", "ig", "tanh_c", "sg_scratch", "dtype")

    def __init__(self, cell: "LSTMCell", state: LSTMState, dtype=np.float64) -> None:
        self.dtype = np.dtype(dtype)
        perm = cell._gate_perm
        self.w_x = np.ascontiguousarray(cell.w_x.data[:, perm], dtype=self.dtype)
        self.w_h = np.ascontiguousarray(cell.w_h.data[:, perm], dtype=self.dtype)
        self.bias = np.ascontiguousarray(cell.bias.data[perm], dtype=self.dtype)
        h0, c0 = state
        self.h = np.array(h0, dtype=self.dtype, copy=True, order="C")
        self.c = np.array(c0, dtype=self.dtype, copy=True, order="C")
        batch = self.h.shape[0]
        hd = cell.hidden_dim
        self.gates = np.empty((batch, 4 * hd), dtype=self.dtype)
        self.hw = np.empty((batch, 4 * hd), dtype=self.dtype)
        self.ig = np.empty((batch, hd), dtype=self.dtype)
        self.tanh_c = np.empty((batch, hd), dtype=self.dtype)
        self.sg_scratch = (
            np.empty((batch, 3 * hd), dtype=self.dtype),
            np.empty((batch, 3 * hd), dtype=self.dtype),
        )


def _sigmoid_inplace(a: np.ndarray) -> None:
    """In-place logistic sigmoid via ``0.5 * (1 + tanh(x / 2))``.

    One ufunc pass, no masking and no overflow — the fused sequence kernels
    are Python-overhead bound at training batch sizes, so the hot loop uses
    this instead of the allocating masked implementation in
    :mod:`repro.nn.activations` (equal to it within ~1 ulp).
    """
    np.multiply(a, 0.5, out=a)
    np.tanh(a, out=a)
    np.multiply(a, 0.5, out=a)
    np.add(a, 0.5, out=a)


class LSTMCell(Module):
    """A single LSTM cell operating on one time step.

    Parameters
    ----------
    input_dim:
        Dimension of the per-step input vector.
    hidden_dim:
        Dimension of the hidden and cell states.
    forget_bias:
        Initial value of the forget-gate bias (helps gradient flow early in
        training).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        forget_bias: float = 1.0,
        rng: np.random.Generator | int | None = None,
        name: str = "lstm_cell",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.w_x = Parameter(
            init.xavier_uniform((input_dim, 4 * hidden_dim), rng=rng), f"{name}.w_x"
        )
        self.w_h = Parameter(
            init.orthogonal((hidden_dim, 4 * hidden_dim), rng=rng), f"{name}.w_h"
        )
        self.bias = Parameter(init.lstm_bias(hidden_dim, forget_bias), f"{name}.bias")
        self._cache: List[tuple] = []
        self._seq_cache: List[tuple] = []
        self._dgates_buf: Optional[np.ndarray] = None
        # fused-path gate order [i, f, o, g]: the three sigmoid gates become
        # one contiguous block so the whole gate matrix goes through a single
        # tanh pass per step (sigmoid(x) = 0.5 + 0.5 * tanh(x / 2))
        hd = self.hidden_dim
        self._gate_perm = np.concatenate(
            [np.arange(0, hd), np.arange(hd, 2 * hd), np.arange(3 * hd, 4 * hd), np.arange(2 * hd, 3 * hd)]
        )

    # ------------------------------------------------------------------
    def zero_state(self, batch_size: int, dtype=np.float64) -> LSTMState:
        h = np.zeros((batch_size, self.hidden_dim), dtype=dtype)
        c = np.zeros((batch_size, self.hidden_dim), dtype=dtype)
        return h, c

    def step(self, x: np.ndarray, state: LSTMState) -> Tuple[np.ndarray, LSTMState]:
        """Run one time step; returns the new hidden state and state pair."""
        h_prev, c_prev = state
        x = np.asarray(x, dtype=np.float64)
        gates = x @ self.w_x.data + h_prev @ self.w_h.data + self.bias.data
        hd = self.hidden_dim
        i = sigmoid(gates[:, 0 * hd : 1 * hd])
        f = sigmoid(gates[:, 1 * hd : 2 * hd])
        g = np.tanh(gates[:, 2 * hd : 3 * hd])
        o = sigmoid(gates[:, 3 * hd : 4 * hd])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        self._cache.append((x, h_prev, c_prev, i, f, g, o, tanh_c))
        return h, (h, c)

    def step_backward(
        self, dh: np.ndarray, dc: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward pass for the most recent cached step.

        Parameters
        ----------
        dh:
            Gradient w.r.t. the hidden output of the step (including any
            gradient flowing back from the *next* time step's recurrence).
        dc:
            Gradient w.r.t. the cell state flowing back from the next step.

        Returns
        -------
        (dx, dh_prev, dc_prev)
        """
        if not self._cache:
            raise RuntimeError("step_backward called more times than step")
        x, h_prev, c_prev, i, f, g, o, tanh_c = self._cache.pop()
        dh = np.asarray(dh, dtype=np.float64)
        if dc is None:
            dc = np.zeros_like(dh)
        d_o = dh * tanh_c
        dc_total = dc + dh * o * (1.0 - tanh_c * tanh_c)
        d_i = dc_total * g
        d_f = dc_total * c_prev
        d_g = dc_total * i
        dc_prev = dc_total * f
        # back through gate non-linearities
        hd = self.hidden_dim
        dgates = self._step_dgates(dh.shape[0])
        dgates[:, 0 * hd : 1 * hd] = d_i * i * (1.0 - i)
        dgates[:, 1 * hd : 2 * hd] = d_f * f * (1.0 - f)
        dgates[:, 2 * hd : 3 * hd] = d_g * (1.0 - g * g)
        dgates[:, 3 * hd : 4 * hd] = d_o * o * (1.0 - o)
        self.w_x.grad += x.T @ dgates
        self.w_h.grad += h_prev.T @ dgates
        self.bias.grad += dgates.sum(axis=0)
        dx = dgates @ self.w_x.data.T
        dh_prev = dgates @ self.w_h.data.T
        return dx, dh_prev, dc_prev

    def _step_dgates(self, batch: int) -> np.ndarray:
        """Preallocated per-step ``(B, 4H)`` gate-gradient buffer.

        The buffer is consumed (matmuls, sums) before :meth:`step_backward`
        returns, so reusing it across steps is safe and removes the
        ``np.concatenate`` allocation from the BPTT hot loop.
        """
        buf = self._dgates_buf
        if buf is None or buf.shape[0] != batch:
            buf = self._dgates_buf = np.empty((batch, 4 * self.hidden_dim), dtype=np.float64)
        return buf

    def clear_cache(self) -> None:
        self._cache.clear()
        self._seq_cache.clear()

    # fused decode path -------------------------------------------------
    def begin_decode(self, state: LSTMState, dtype=np.float64) -> LSTMDecodeContext:
        """Open an allocation-free decode session starting from ``state``.

        Copies the initial ``(h, c)`` into context-owned buffers and builds
        the ``[i, f, o, g]``-permuted weight copies, so every subsequent
        :meth:`step_decode` runs without allocating.  The copies are tiny
        and rebuilt per session, so weight updates are always picked up.
        ``dtype`` selects the compute precision of the whole session.
        """
        return LSTMDecodeContext(self, state, dtype=dtype)

    def step_decode(self, x: np.ndarray, ctx: LSTMDecodeContext) -> np.ndarray:
        """One decode step, byte-identical to the serving ``step`` kernel.

        Runs the same ``stable_matmul`` products as
        :class:`repro.nn.inference.LSTMStackInference.step` but on the
        permuted gate layout, so the three sigmoid gates form one
        contiguous block evaluated by a single :func:`sigmoid_dense` call
        (bitwise equal to the masked :func:`sigmoid`).  PR 2's half-scaled
        ``tanh``-only gate trick is deliberately *not* used here: the
        decode path is gated on byte-identity with the stepwise serving
        kernels, and ``0.5 + 0.5 * tanh(x / 2)`` differs from the masked
        sigmoid in the last ulp for ~58% of inputs.  All intermediates
        live in the context buffers; the returned hidden state is a view
        of the context's ``h`` buffer (valid until the next step).
        """
        hd = self.hidden_dim
        gates = ctx.gates
        # same left-to-right accumulation as the stepwise kernel:
        # (x @ w_x + h_prev @ w_h) + bias, merely column-permuted
        stable_matmul(x, ctx.w_x, out=gates)
        stable_matmul(ctx.h, ctx.w_h, out=ctx.hw)
        gates += ctx.hw
        gates += ctx.bias
        sg = gates[:, : 3 * hd]  # [i, f, o] block (one dense pass, no scatter)
        sigmoid_dense(sg, out=sg, scratch=ctx.sg_scratch)
        g = gates[:, 3 * hd :]
        np.tanh(g, out=g)
        # c = f * c_prev + i * g, h = o * tanh(c) — identical operand order
        np.multiply(gates[:, :hd], g, out=ctx.ig)
        np.multiply(gates[:, hd : 2 * hd], ctx.c, out=ctx.c)
        ctx.c += ctx.ig
        np.tanh(ctx.c, out=ctx.tanh_c)
        np.multiply(gates[:, 2 * hd : 3 * hd], ctx.tanh_c, out=ctx.h)
        return ctx.h

    # fused full-sequence path -----------------------------------------
    def _fused_gate_weights(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Permuted ``[i, f, o, g]`` weight/bias copies with the sigmoid
        columns pre-scaled by 1/2.

        With the scaling, ``tanh`` over the whole gate block evaluates
        ``tanh(x/2)`` for the sigmoid gates and ``tanh(x)`` for the cell
        candidate in one pass; ``0.5 + 0.5 * tanh(x/2)`` then recovers the
        exact sigmoid with a single cheap fix-up over the contiguous
        sigmoid block.  The copies are tiny (``(I+H+1, 4H)``) and rebuilt
        per call, so optimiser updates are always picked up.
        """
        perm = self._gate_perm
        hd = self.hidden_dim
        w_x_f = self.w_x.data[:, perm]
        w_x_f[:, : 3 * hd] *= 0.5
        w_h_f = self.w_h.data[:, perm]
        w_h_f[:, : 3 * hd] *= 0.5
        b_f = self.bias.data[perm]
        b_f[: 3 * hd] *= 0.5
        return w_x_f, w_h_f, b_f

    def forward_sequence(
        self,
        x: np.ndarray,
        state: Optional[LSTMState] = None,
        with_cache: bool = True,
    ) -> Tuple[np.ndarray, LSTMState]:
        """Teacher-forced pass over a full ``(B, T, input_dim)`` sequence.

        The input projections (and the bias) of all ``T`` steps run as a
        single fused GEMM through :func:`repro.nn.kernels.stable_matmul`;
        only the recurrent ``h @ w_h`` product remains per-step.  All
        intermediates live in preallocated time-major ``(T, B, .)`` tensors
        (contiguous per-step slices) in the fused ``[i, f, o, g]`` gate
        order, and all four gate non-linearities collapse into one in-place
        ``tanh`` pass plus a sigmoid fix-up (see
        :meth:`_fused_gate_weights`).  With ``with_cache=False``
        (evaluation) no backward tensors are retained at all.

        The returned ``(B, T, H)`` output array is a transposed view of the
        time-major buffer, so stacking layers chains without copies.
        """
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        hd = self.hidden_dim
        if state is None:
            h, c = self.zero_state(batch)
        else:
            h, c = state
        if steps == 0:
            return np.empty((batch, 0, hd), dtype=np.float64), (h, c)
        w_x_f, w_h_f, b_f = self._fused_gate_weights()
        # time-major input: per-step slices are contiguous
        x_tm = np.ascontiguousarray(x.transpose(1, 0, 2))
        # one (T*B, 4H) GEMM for every step's input projection (+ bias)
        gates = stable_matmul(x_tm.reshape(steps * batch, self.input_dim), w_x_f)
        gates = gates.reshape(steps, batch, 4 * hd)
        gates += b_f
        out_tm = np.empty((steps, batch, hd), dtype=np.float64)
        hw = np.empty((batch, 4 * hd), dtype=np.float64)
        h0, c0 = h, c
        if with_cache:
            cell_tm = np.empty((steps, batch, hd), dtype=np.float64)
            tanh_c_tm = np.empty((steps, batch, hd), dtype=np.float64)
        else:
            cell_tm = tanh_c_tm = None
            c_buf = np.empty((batch, hd), dtype=np.float64)
            tanh_buf = np.empty((batch, hd), dtype=np.float64)
        for t in range(steps):
            ga = gates[t]  # activations overwrite the pre-activations in place
            np.matmul(h, w_h_f, out=hw)
            ga += hw
            np.tanh(ga, out=ga)
            sg = ga[:, : 3 * hd]  # [i, f, o] block: 0.5 + 0.5 * tanh(x/2)
            sg *= 0.5
            sg += 0.5
            c_t = cell_tm[t] if with_cache else c_buf
            np.multiply(ga[:, hd : 2 * hd], c, out=c_t)  # f * c_prev
            c_t += ga[:, :hd] * ga[:, 3 * hd :]  # + i * g
            tanh_c = tanh_c_tm[t] if with_cache else tanh_buf
            np.tanh(c_t, out=tanh_c)
            np.multiply(ga[:, 2 * hd : 3 * hd], tanh_c, out=out_tm[t])
            h = out_tm[t]
            c = c_t
        if with_cache:
            self._seq_cache.append((x_tm, gates, cell_tm, tanh_c_tm, out_tm, h0, c0))
            return out_tm.transpose(1, 0, 2), (h, c)
        return out_tm.transpose(1, 0, 2), (h, c.copy())

    def backward_sequence(
        self,
        d_outputs: np.ndarray,
        d_state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        """Fused BPTT for the most recent :meth:`forward_sequence` call.

        Gate gradients of every step are written into one preallocated
        ``(T, B, 4H)`` buffer (no per-step ``np.concatenate``); the
        ``w_x``/``w_h``/``bias`` gradients then accumulate through reshaped
        full-sequence GEMMs instead of one small GEMM per step, and only the
        recurrent ``dgates @ w_h.T`` product remains in the loop.

        Returns ``(dx, (dh0, dc0))`` — the gradient w.r.t. the inputs and
        the initial state.
        """
        if not self._seq_cache:
            raise RuntimeError("backward_sequence called more times than forward_sequence")
        x_tm, gates, cell_tm, tanh_c_tm, out_tm, h0, c0 = self._seq_cache.pop()
        d_out_tm = np.ascontiguousarray(
            np.asarray(d_outputs, dtype=np.float64).transpose(1, 0, 2)
        )
        steps, batch, hd = d_out_tm.shape
        perm = self._gate_perm
        if d_state is None:
            dh_next = np.zeros((batch, hd), dtype=np.float64)
            dc_next = np.zeros((batch, hd), dtype=np.float64)
        else:
            dh_next, dc_next = d_state
        dgates = np.empty((steps, batch, 4 * hd), dtype=np.float64)
        dh = np.empty((batch, hd), dtype=np.float64)
        dc_total = np.empty((batch, hd), dtype=np.float64)
        dh_buf = np.empty((batch, hd), dtype=np.float64)
        dc_buf = np.empty((batch, hd), dtype=np.float64)
        # hoist the activation-derivative factors out of the time loop:
        # sigma' = a * (1 - a) for the [i, f, o] block, tanh' = 1 - a^2 for
        # the candidate and the cell tanh — three full-tensor passes instead
        # of six small strided passes per step
        deriv = np.empty_like(gates)
        sig_block = gates[:, :, : 3 * hd]
        d_sig = deriv[:, :, : 3 * hd]
        np.subtract(1.0, sig_block, out=d_sig)
        d_sig *= sig_block
        g_block = gates[:, :, 3 * hd :]
        d_g = deriv[:, :, 3 * hd :]
        np.multiply(g_block, g_block, out=d_g)
        np.subtract(1.0, d_g, out=d_g)
        dtanh_c = np.empty_like(tanh_c_tm)
        np.multiply(tanh_c_tm, tanh_c_tm, out=dtanh_c)
        np.subtract(1.0, dtanh_c, out=dtanh_c)
        # permuted, unscaled recurrent weights for the in-loop dh product
        w_h_perm_t = np.ascontiguousarray(self.w_h.data[:, perm].T)
        for t in reversed(range(steps)):
            ga = gates[t]  # [i, f, o, g] activations
            i = ga[:, :hd]
            f = ga[:, hd : 2 * hd]
            o = ga[:, 2 * hd : 3 * hd]
            g = ga[:, 3 * hd :]
            tanh_c = tanh_c_tm[t]
            c_prev = cell_tm[t - 1] if t > 0 else c0
            np.add(d_out_tm[t], dh_next, out=dh)
            # dc_total = dc_next + dh * o * (1 - tanh_c^2)
            np.multiply(dh, o, out=dc_total)
            dc_total *= dtanh_c[t]
            dc_total += dc_next
            dg = dgates[t]
            # raw upstream gate gradients, then one fused derivative pass
            np.multiply(dc_total, g, out=dg[:, :hd])
            np.multiply(dc_total, c_prev, out=dg[:, hd : 2 * hd])
            np.multiply(dh, tanh_c, out=dg[:, 2 * hd : 3 * hd])
            np.multiply(dc_total, i, out=dg[:, 3 * hd :])
            dg *= deriv[t]
            np.multiply(dc_total, f, out=dc_buf)
            dc_next = dc_buf
            np.matmul(dg, w_h_perm_t, out=dh_buf)
            dh_next = dh_buf
        dgates_flat = dgates.reshape(steps * batch, 4 * hd)
        # scatter the permuted-layout gradients back into the [i, f, g, o]
        # parameter columns (perm is a permutation, so += is safe)
        self.w_x.grad[:, perm] += x_tm.reshape(steps * batch, self.input_dim).T @ dgates_flat
        # h_prev per step is [h0, out_0, ..., out_{T-2}]
        dw_h = h0.T @ dgates[0]
        if steps > 1:
            dw_h += (
                out_tm[: steps - 1].reshape((steps - 1) * batch, hd).T
                @ dgates[1:].reshape((steps - 1) * batch, 4 * hd)
            )
        self.w_h.grad[:, perm] += dw_h
        self.bias.grad[perm] += dgates_flat.sum(axis=0)
        dx_tm = (dgates_flat @ self.w_x.data[:, perm].T).reshape(
            steps, batch, self.input_dim
        )
        return dx_tm.transpose(1, 0, 2), (dh_next.copy(), dc_next.copy())

    # convenience full-sequence helpers -------------------------------
    def forward(self, x: np.ndarray, state: Optional[LSTMState] = None) -> Tuple[np.ndarray, LSTMState]:
        """Run a full ``(batch, time, input_dim)`` sequence."""
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        if state is None:
            state = self.zero_state(batch)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            h, state = self.step(x[:, t, :], state)
            outputs[:, t, :] = h
        return outputs, state

    def backward(
        self,
        d_outputs: np.ndarray,
        d_state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> np.ndarray:
        """Backward through a full sequence processed with :meth:`forward`."""
        d_outputs = np.asarray(d_outputs, dtype=np.float64)
        batch, steps, _ = d_outputs.shape
        if d_state is None:
            dh_next = np.zeros((batch, self.hidden_dim))
            dc_next = np.zeros((batch, self.hidden_dim))
        else:
            dh_next, dc_next = d_state
        dx = np.empty((batch, steps, self.input_dim), dtype=np.float64)
        for t in reversed(range(steps)):
            dxt, dh_next, dc_next = self.step_backward(d_outputs[:, t, :] + dh_next, dc_next)
            dx[:, t, :] = dxt
        return dx


class StackedLSTM(Module):
    """A stack of LSTM layers with an optional inter-layer dropout.

    This mirrors the GluonTS DeepAR default used in the paper (two stacked
    LSTM layers with 40 units each, parameters shared between encoder and
    decoder).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 2,
        dropout: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.num_layers = int(num_layers)
        self.dropout_rate = float(dropout)
        self.rng = rng
        self.cells = [
            LSTMCell(
                input_dim if layer == 0 else hidden_dim,
                hidden_dim,
                rng=rng,
                name=f"lstm.{layer}",
            )
            for layer in range(num_layers)
        ]
        self._dropout_cache: List[List[Optional[np.ndarray]]] = []
        self._seq_dropout_cache: List[Optional[np.ndarray]] = []

    # ------------------------------------------------------------------
    def zero_state(self, batch_size: int, dtype=np.float64) -> List[LSTMState]:
        return [cell.zero_state(batch_size, dtype=dtype) for cell in self.cells]

    def step(
        self, x: np.ndarray, states: Sequence[LSTMState]
    ) -> Tuple[np.ndarray, List[LSTMState]]:
        """Advance the whole stack by one time step."""
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        new_states: List[LSTMState] = []
        masks: List[Optional[np.ndarray]] = []
        h = np.asarray(x, dtype=np.float64)
        for layer, cell in enumerate(self.cells):
            h, state = cell.step(h, states[layer])
            new_states.append(state)
            if (
                self.training
                and self.dropout_rate > 0.0
                and layer < self.num_layers - 1
            ):
                keep = 1.0 - self.dropout_rate
                mask = (self.rng.random(h.shape) < keep).astype(np.float64) / keep
                h = h * mask
                masks.append(mask)
            else:
                masks.append(None)
        self._dropout_cache.append(masks)
        return h, new_states

    def step_backward(
        self,
        dh_top: np.ndarray,
        dstates: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
        """Backward for the most recent :meth:`step` call.

        Parameters
        ----------
        dh_top:
            Gradient w.r.t. the top-layer hidden output of the step.
        dstates:
            Per-layer ``(dh, dc)`` gradients flowing back from the next time
            step (or ``None`` at the last step).

        Returns
        -------
        (dx, dprev_states) where ``dprev_states`` is a list of per-layer
        ``(dh_prev, dc_prev)`` to be passed to the previous step.
        """
        if not self._dropout_cache:
            raise RuntimeError("step_backward called more times than step")
        masks = self._dropout_cache.pop()
        batch = np.asarray(dh_top).shape[0]
        if dstates is None:
            dstates = [
                (
                    np.zeros((batch, self.hidden_dim)),
                    np.zeros((batch, self.hidden_dim)),
                )
                for _ in range(self.num_layers)
            ]
        dprev_states: List[Tuple[np.ndarray, np.ndarray]] = [None] * self.num_layers  # type: ignore
        d_from_above = np.asarray(dh_top, dtype=np.float64)
        for layer in reversed(range(self.num_layers)):
            cell = self.cells[layer]
            if masks[layer] is not None:
                d_from_above = d_from_above * masks[layer]
            dh = d_from_above + dstates[layer][0]
            dc = dstates[layer][1]
            dx_layer, dh_prev, dc_prev = cell.step_backward(dh, dc)
            dprev_states[layer] = (dh_prev, dc_prev)
            d_from_above = dx_layer
        return d_from_above, dprev_states

    # ------------------------------------------------------------------
    # batched state save / restore (used by the serving engine to carry
    # warm-up states between forecast origins)
    # ------------------------------------------------------------------
    def export_state(self, states: Sequence[LSTMState]) -> np.ndarray:
        """Pack per-layer ``(h, c)`` pairs into one ``(L, 2, B, H)`` array."""
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        return np.stack([np.stack([h, c]) for h, c in states])

    def import_state(self, packed: np.ndarray, dtype=np.float64) -> List[LSTMState]:
        """Inverse of :meth:`export_state`; returns fresh per-layer copies."""
        packed = np.asarray(packed, dtype=dtype)
        if packed.ndim != 4 or packed.shape[0] != self.num_layers or packed.shape[1] != 2:
            raise ValueError(
                f"expected shape ({self.num_layers}, 2, B, {self.hidden_dim}), "
                f"got {packed.shape}"
            )
        if packed.shape[3] != self.hidden_dim:
            raise ValueError(f"hidden dim mismatch: {packed.shape[3]} != {self.hidden_dim}")
        return [(packed[layer, 0].copy(), packed[layer, 1].copy()) for layer in range(self.num_layers)]

    # ------------------------------------------------------------------
    # fused decode path (used by the serving engine's Monte-Carlo loop)
    # ------------------------------------------------------------------
    def begin_decode(
        self, states: Sequence[LSTMState], dtype=np.float64
    ) -> List[LSTMDecodeContext]:
        """Per-layer decode contexts starting from ``states`` (copied in)."""
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        return [cell.begin_decode(state, dtype=dtype) for cell, state in zip(self.cells, states)]

    def step_decode(
        self, x: np.ndarray, ctxs: Sequence[LSTMDecodeContext]
    ) -> np.ndarray:
        """Advance the whole stack by one decode step (allocation-free).

        Byte-identical to ``LSTMStackInference.step`` (dropout-free,
        cache-free); the returned top-layer hidden state is a view of the
        last context's buffer.
        """
        h = x
        for cell, ctx in zip(self.cells, ctxs):
            h = cell.step_decode(h, ctx)
        return h

    def decode_sequence(
        self, x: np.ndarray, states: Optional[Sequence[LSTMState]] = None
    ) -> Tuple[np.ndarray, List[LSTMState]]:
        """Run a known ``(B, T, input_dim)`` input through the decode kernels.

        Convenience driver over :meth:`begin_decode` / :meth:`step_decode`
        (per-step buffer reuse, one sigmoid pass over the contiguous gate
        block); byte-identical to stepping ``LSTMStackInference.step`` one
        lap at a time.  Returns the top-layer outputs and final states.
        """
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        if states is None:
            states = self.zero_state(batch)
        ctxs = self.begin_decode(states)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            outputs[:, t, :] = self.step_decode(x[:, t, :], ctxs)
        return outputs, [(ctx.h.copy(), ctx.c.copy()) for ctx in ctxs]

    # ------------------------------------------------------------------
    # fused full-sequence path
    # ------------------------------------------------------------------
    def _sequence_dropout_masks(
        self, batch: int, steps: int
    ) -> Optional[np.ndarray]:
        """Inter-layer dropout masks for a fused full-sequence pass.

        Drawn as one ``(T, L-1, B, H)`` block, which consumes the RNG stream
        in exactly the order the stepwise loop does (per step, then per
        layer), so fused and stepwise training are bit-for-bit comparable
        under the same seed.
        """
        if not (self.training and self.dropout_rate > 0.0 and self.num_layers > 1):
            return None
        keep = 1.0 - self.dropout_rate
        draws = self.rng.random((steps, self.num_layers - 1, batch, self.hidden_dim))
        return (draws < keep).astype(np.float64) / keep

    def forward_sequence(
        self,
        x: np.ndarray,
        states: Optional[Sequence[LSTMState]] = None,
        with_cache: bool = True,
    ) -> Tuple[np.ndarray, List[LSTMState]]:
        """Fused teacher-forced pass over ``(B, T, input_dim)``.

        Layers are processed one after the other over the whole sequence
        (layer-major), so every layer's input projection is a single fused
        GEMM.  Results are identical to the time-major step loop.  With
        ``with_cache=False`` no backward state is retained (cheap
        validation / encoding).
        """
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        if states is None:
            states = self.zero_state(batch)
        masks = self._sequence_dropout_masks(batch, steps)
        h_seq = x
        final_states: List[LSTMState] = []
        for layer, cell in enumerate(self.cells):
            h_seq, state = cell.forward_sequence(h_seq, states[layer], with_cache=with_cache)
            final_states.append(state)
            if masks is not None and layer < self.num_layers - 1:
                # masks[:, layer] is (T, B, H); move time behind batch
                h_seq = h_seq * masks[:, layer].transpose(1, 0, 2)
        if with_cache:
            self._seq_dropout_cache.append(masks)
        return h_seq, final_states

    def backward_sequence(
        self,
        d_outputs: np.ndarray,
        d_final_states: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
        """Fused BPTT matching the most recent :meth:`forward_sequence`.

        Returns ``(dx, d_initial_states)``.
        """
        if not self._seq_dropout_cache:
            raise RuntimeError(
                "backward_sequence called more times than forward_sequence"
            )
        masks = self._seq_dropout_cache.pop()
        grad = np.asarray(d_outputs, dtype=np.float64)
        d_initial: List[Tuple[np.ndarray, np.ndarray]] = [None] * self.num_layers  # type: ignore
        for layer in reversed(range(self.num_layers)):
            if masks is not None and layer < self.num_layers - 1:
                grad = grad * masks[:, layer].transpose(1, 0, 2)
            d_state = None if d_final_states is None else d_final_states[layer]
            grad, d_init = self.cells[layer].backward_sequence(grad, d_state)
            d_initial[layer] = d_init
        return grad, d_initial

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, states: Optional[Sequence[LSTMState]] = None
    ) -> Tuple[np.ndarray, List[LSTMState]]:
        """Run a full ``(batch, time, input_dim)`` sequence through the stack."""
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        if states is None:
            states = self.zero_state(batch)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            h, states = self.step(x[:, t, :], states)
            outputs[:, t, :] = h
        return outputs, list(states)

    def backward(
        self,
        d_outputs: np.ndarray,
        d_final_states: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> np.ndarray:
        """Backward through a full sequence processed with :meth:`forward`."""
        d_outputs = np.asarray(d_outputs, dtype=np.float64)
        batch, steps, _ = d_outputs.shape
        dstates = list(d_final_states) if d_final_states is not None else None
        dx = np.empty((batch, steps, self.input_dim), dtype=np.float64)
        for t in reversed(range(steps)):
            dxt, dstates = self.step_backward(d_outputs[:, t, :], dstates)
            dx[:, t, :] = dxt
        return dx

    def clear_cache(self) -> None:
        self._dropout_cache.clear()
        self._seq_dropout_cache.clear()
        for cell in self.cells:
            cell.clear_cache()
