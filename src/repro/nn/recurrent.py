"""Recurrent layers: LSTM cell, single-layer LSTM, and stacked LSTM.

The cells expose a *step* API (one time step at a time) because the
DeepAR-style decoders in this repository interleave sampling with the
recurrence; full-sequence helpers are provided on top of the step API for
the encoder side and for tests.

Gate layout in all weight matrices is ``[input, forget, cell, output]``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import initializers as init
from .activations import sigmoid
from .module import Module, Parameter

__all__ = ["LSTMState", "LSTMCell", "StackedLSTM"]

# (hidden, cell) pair for one layer
LSTMState = Tuple[np.ndarray, np.ndarray]


class LSTMCell(Module):
    """A single LSTM cell operating on one time step.

    Parameters
    ----------
    input_dim:
        Dimension of the per-step input vector.
    hidden_dim:
        Dimension of the hidden and cell states.
    forget_bias:
        Initial value of the forget-gate bias (helps gradient flow early in
        training).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        forget_bias: float = 1.0,
        rng: np.random.Generator | int | None = None,
        name: str = "lstm_cell",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.w_x = Parameter(
            init.xavier_uniform((input_dim, 4 * hidden_dim), rng=rng), f"{name}.w_x"
        )
        self.w_h = Parameter(
            init.orthogonal((hidden_dim, 4 * hidden_dim), rng=rng), f"{name}.w_h"
        )
        self.bias = Parameter(init.lstm_bias(hidden_dim, forget_bias), f"{name}.bias")
        self._cache: List[tuple] = []

    # ------------------------------------------------------------------
    def zero_state(self, batch_size: int) -> LSTMState:
        h = np.zeros((batch_size, self.hidden_dim), dtype=np.float64)
        c = np.zeros((batch_size, self.hidden_dim), dtype=np.float64)
        return h, c

    def step(self, x: np.ndarray, state: LSTMState) -> Tuple[np.ndarray, LSTMState]:
        """Run one time step; returns the new hidden state and state pair."""
        h_prev, c_prev = state
        x = np.asarray(x, dtype=np.float64)
        gates = x @ self.w_x.data + h_prev @ self.w_h.data + self.bias.data
        hd = self.hidden_dim
        i = sigmoid(gates[:, 0 * hd : 1 * hd])
        f = sigmoid(gates[:, 1 * hd : 2 * hd])
        g = np.tanh(gates[:, 2 * hd : 3 * hd])
        o = sigmoid(gates[:, 3 * hd : 4 * hd])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        self._cache.append((x, h_prev, c_prev, i, f, g, o, tanh_c))
        return h, (h, c)

    def step_backward(
        self, dh: np.ndarray, dc: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward pass for the most recent cached step.

        Parameters
        ----------
        dh:
            Gradient w.r.t. the hidden output of the step (including any
            gradient flowing back from the *next* time step's recurrence).
        dc:
            Gradient w.r.t. the cell state flowing back from the next step.

        Returns
        -------
        (dx, dh_prev, dc_prev)
        """
        if not self._cache:
            raise RuntimeError("step_backward called more times than step")
        x, h_prev, c_prev, i, f, g, o, tanh_c = self._cache.pop()
        dh = np.asarray(dh, dtype=np.float64)
        if dc is None:
            dc = np.zeros_like(dh)
        d_o = dh * tanh_c
        dc_total = dc + dh * o * (1.0 - tanh_c * tanh_c)
        d_i = dc_total * g
        d_f = dc_total * c_prev
        d_g = dc_total * i
        dc_prev = dc_total * f
        # back through gate non-linearities
        dg_i = d_i * i * (1.0 - i)
        dg_f = d_f * f * (1.0 - f)
        dg_g = d_g * (1.0 - g * g)
        dg_o = d_o * o * (1.0 - o)
        dgates = np.concatenate([dg_i, dg_f, dg_g, dg_o], axis=1)
        self.w_x.grad += x.T @ dgates
        self.w_h.grad += h_prev.T @ dgates
        self.bias.grad += dgates.sum(axis=0)
        dx = dgates @ self.w_x.data.T
        dh_prev = dgates @ self.w_h.data.T
        return dx, dh_prev, dc_prev

    def clear_cache(self) -> None:
        self._cache.clear()

    # convenience full-sequence helpers -------------------------------
    def forward(self, x: np.ndarray, state: Optional[LSTMState] = None) -> Tuple[np.ndarray, LSTMState]:
        """Run a full ``(batch, time, input_dim)`` sequence."""
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        if state is None:
            state = self.zero_state(batch)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            h, state = self.step(x[:, t, :], state)
            outputs[:, t, :] = h
        return outputs, state

    def backward(
        self,
        d_outputs: np.ndarray,
        d_state: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> np.ndarray:
        """Backward through a full sequence processed with :meth:`forward`."""
        d_outputs = np.asarray(d_outputs, dtype=np.float64)
        batch, steps, _ = d_outputs.shape
        if d_state is None:
            dh_next = np.zeros((batch, self.hidden_dim))
            dc_next = np.zeros((batch, self.hidden_dim))
        else:
            dh_next, dc_next = d_state
        dx = np.empty((batch, steps, self.input_dim), dtype=np.float64)
        for t in reversed(range(steps)):
            dxt, dh_next, dc_next = self.step_backward(d_outputs[:, t, :] + dh_next, dc_next)
            dx[:, t, :] = dxt
        return dx


class StackedLSTM(Module):
    """A stack of LSTM layers with an optional inter-layer dropout.

    This mirrors the GluonTS DeepAR default used in the paper (two stacked
    LSTM layers with 40 units each, parameters shared between encoder and
    decoder).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 2,
        dropout: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.num_layers = int(num_layers)
        self.dropout_rate = float(dropout)
        self.rng = rng
        self.cells = [
            LSTMCell(
                input_dim if layer == 0 else hidden_dim,
                hidden_dim,
                rng=rng,
                name=f"lstm.{layer}",
            )
            for layer in range(num_layers)
        ]
        self._dropout_cache: List[List[Optional[np.ndarray]]] = []

    # ------------------------------------------------------------------
    def zero_state(self, batch_size: int) -> List[LSTMState]:
        return [cell.zero_state(batch_size) for cell in self.cells]

    def step(
        self, x: np.ndarray, states: Sequence[LSTMState]
    ) -> Tuple[np.ndarray, List[LSTMState]]:
        """Advance the whole stack by one time step."""
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        new_states: List[LSTMState] = []
        masks: List[Optional[np.ndarray]] = []
        h = np.asarray(x, dtype=np.float64)
        for layer, cell in enumerate(self.cells):
            h, state = cell.step(h, states[layer])
            new_states.append(state)
            if (
                self.training
                and self.dropout_rate > 0.0
                and layer < self.num_layers - 1
            ):
                keep = 1.0 - self.dropout_rate
                mask = (self.rng.random(h.shape) < keep).astype(np.float64) / keep
                h = h * mask
                masks.append(mask)
            else:
                masks.append(None)
        self._dropout_cache.append(masks)
        return h, new_states

    def step_backward(
        self,
        dh_top: np.ndarray,
        dstates: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]]]:
        """Backward for the most recent :meth:`step` call.

        Parameters
        ----------
        dh_top:
            Gradient w.r.t. the top-layer hidden output of the step.
        dstates:
            Per-layer ``(dh, dc)`` gradients flowing back from the next time
            step (or ``None`` at the last step).

        Returns
        -------
        (dx, dprev_states) where ``dprev_states`` is a list of per-layer
        ``(dh_prev, dc_prev)`` to be passed to the previous step.
        """
        if not self._dropout_cache:
            raise RuntimeError("step_backward called more times than step")
        masks = self._dropout_cache.pop()
        batch = np.asarray(dh_top).shape[0]
        if dstates is None:
            dstates = [
                (
                    np.zeros((batch, self.hidden_dim)),
                    np.zeros((batch, self.hidden_dim)),
                )
                for _ in range(self.num_layers)
            ]
        dprev_states: List[Tuple[np.ndarray, np.ndarray]] = [None] * self.num_layers  # type: ignore
        d_from_above = np.asarray(dh_top, dtype=np.float64)
        for layer in reversed(range(self.num_layers)):
            cell = self.cells[layer]
            if masks[layer] is not None:
                d_from_above = d_from_above * masks[layer]
            dh = d_from_above + dstates[layer][0]
            dc = dstates[layer][1]
            dx_layer, dh_prev, dc_prev = cell.step_backward(dh, dc)
            dprev_states[layer] = (dh_prev, dc_prev)
            d_from_above = dx_layer
        return d_from_above, dprev_states

    # ------------------------------------------------------------------
    # batched state save / restore (used by the serving engine to carry
    # warm-up states between forecast origins)
    # ------------------------------------------------------------------
    def export_state(self, states: Sequence[LSTMState]) -> np.ndarray:
        """Pack per-layer ``(h, c)`` pairs into one ``(L, 2, B, H)`` array."""
        if len(states) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} states, got {len(states)}")
        return np.stack([np.stack([h, c]) for h, c in states])

    def import_state(self, packed: np.ndarray) -> List[LSTMState]:
        """Inverse of :meth:`export_state`; returns fresh per-layer copies."""
        packed = np.asarray(packed, dtype=np.float64)
        if packed.ndim != 4 or packed.shape[0] != self.num_layers or packed.shape[1] != 2:
            raise ValueError(
                f"expected shape ({self.num_layers}, 2, B, {self.hidden_dim}), "
                f"got {packed.shape}"
            )
        if packed.shape[3] != self.hidden_dim:
            raise ValueError(f"hidden dim mismatch: {packed.shape[3]} != {self.hidden_dim}")
        return [(packed[layer, 0].copy(), packed[layer, 1].copy()) for layer in range(self.num_layers)]

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, states: Optional[Sequence[LSTMState]] = None
    ) -> Tuple[np.ndarray, List[LSTMState]]:
        """Run a full ``(batch, time, input_dim)`` sequence through the stack."""
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        if states is None:
            states = self.zero_state(batch)
        outputs = np.empty((batch, steps, self.hidden_dim), dtype=np.float64)
        for t in range(steps):
            h, states = self.step(x[:, t, :], states)
            outputs[:, t, :] = h
        return outputs, list(states)

    def backward(
        self,
        d_outputs: np.ndarray,
        d_final_states: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> np.ndarray:
        """Backward through a full sequence processed with :meth:`forward`."""
        d_outputs = np.asarray(d_outputs, dtype=np.float64)
        batch, steps, _ = d_outputs.shape
        dstates = list(d_final_states) if d_final_states is not None else None
        dx = np.empty((batch, steps, self.input_dim), dtype=np.float64)
        for t in reversed(range(steps)):
            dxt, dstates = self.step_backward(d_outputs[:, t, :], dstates)
            dx[:, t, :] = dxt
        return dx

    def clear_cache(self) -> None:
        self._dropout_cache.clear()
        for cell in self.cells:
            cell.clear_cache()
