"""Parameter and Module base classes for the NumPy neural-network framework.

The framework follows a layer-oriented, manual-backpropagation design:

* every :class:`Parameter` holds a dense ``data`` array and an accumulated
  ``grad`` array of the same shape;
* every :class:`Module` owns parameters and/or sub-modules and exposes
  ``forward`` / ``backward`` methods.  ``forward`` pushes whatever it needs
  for the backward pass onto an internal cache stack, and ``backward`` pops
  it, which makes modules safely re-usable inside unrolled recurrent
  computations (backward must simply be called in reverse call order).

The design intentionally avoids a tape-based autodiff engine: the models in
this repository (DeepAR-style LSTM encoder-decoders, MLPs, Transformers)
have static architectures, so explicit backward methods keep the hot loops
vectorised NumPy calls with no per-op Python graph bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor with an associated gradient accumulator."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Sub-classes assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` discover them
    recursively (lists and dicts of modules/parameters are supported).
    """

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------------
    # parameter / submodule discovery
    # ------------------------------------------------------------------
    def _children(self) -> Iterator[Tuple[str, "Module"]]:
        for key, value in vars(self).items():
            if isinstance(value, Module):
                yield key, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{key}.{i}", item
            elif isinstance(value, dict):
                for k, item in value.items():
                    if isinstance(item, Module):
                        yield f"{key}.{k}", item

    def _own_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        for key, value in vars(self).items():
            if isinstance(value, Parameter):
                yield key, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{key}.{i}", item
            elif isinstance(value, dict):
                for k, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{key}.{k}", item

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._own_parameters():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._children():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # training state
    # ------------------------------------------------------------------
    def train(self, flag: bool = True) -> "Module":
        self.training = flag
        for _, child in self._children():
            child.train(flag)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # forward protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
