"""Loss functions with analytic gradients.

Each function returns ``(loss, grads...)`` where ``loss`` is a scalar
(averaged over the non-masked elements) and the gradients are w.r.t. the
predicted quantities, already divided by the same normaliser so they can be
fed directly into the model's ``backward``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "gaussian_nll",
    "gaussian_nll_seq",
    "mse_loss",
    "mae_loss",
    "quantile_loss",
]

_LOG_2PI = np.log(2.0 * np.pi)


def _weights_and_norm(
    shape: Tuple[int, ...],
    weights: Optional[np.ndarray],
    mask: Optional[np.ndarray],
) -> Tuple[np.ndarray, float]:
    w = np.ones(shape, dtype=np.float64)
    if weights is not None:
        w = w * np.asarray(weights, dtype=np.float64)
    if mask is not None:
        w = w * np.asarray(mask, dtype=np.float64)
    norm = float(w.sum())
    if norm <= 0.0:
        norm = 1.0
    return w, norm


def gaussian_nll(
    z: np.ndarray,
    mu: np.ndarray,
    sigma: np.ndarray,
    weights: Optional[np.ndarray] = None,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Weighted Gaussian negative log-likelihood.

    Implements the (negated) log-likelihood of Algorithm 1 in the paper,
    optionally with per-instance weights (the paper up-weights instances
    whose rank changes — Fig. 7 step 1) and a mask selecting decoder steps.

    Returns ``(loss, d_mu, d_sigma)``.
    """
    z = np.asarray(z, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    w, norm = _weights_and_norm(z.shape, weights, mask)
    diff = mu - z
    inv_var = 1.0 / (sigma * sigma)
    nll = 0.5 * (_LOG_2PI + 2.0 * np.log(sigma) + diff * diff * inv_var)
    loss = float((w * nll).sum() / norm)
    d_mu = w * diff * inv_var / norm
    d_sigma = w * (1.0 / sigma - diff * diff / (sigma ** 3)) / norm
    return loss, d_mu, d_sigma


def gaussian_nll_seq(
    z: np.ndarray,
    mu: np.ndarray,
    sigma: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Vectorised Gaussian NLL over a ``(B, K, D)`` decoder block.

    One fused evaluation of the Algorithm 1 objective over all ``K``
    decoder steps and ``D`` target dimensions at once, with per-instance
    weights ``(B,)``.  Matches the stepwise training loss exactly: the loss
    is the mean over the ``K * D`` (step, dim) terms of the weighted
    per-term NLL, each term normalised by the weight sum over the batch.

    Returns ``(loss, d_mu, d_sigma)`` with gradients of shape ``(B, K, D)``
    already divided by the same normaliser.
    """
    z = np.asarray(z, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if z.ndim != 3 or mu.shape != z.shape or sigma.shape != z.shape:
        raise ValueError(
            f"expected matching (B, K, D) arrays, got {z.shape}, {mu.shape}, {sigma.shape}"
        )
    batch, n_steps, n_dims = z.shape
    if weights is None:
        w = np.ones(batch, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (batch,):
            raise ValueError(f"expected weights of shape ({batch},), got {w.shape}")
    norm_w = float(w.sum())
    if norm_w <= 0.0:
        norm_w = 1.0
    norm = norm_w * n_steps * n_dims
    wb = w[:, None, None] / norm
    diff = mu - z
    inv_var = 1.0 / (sigma * sigma)
    nll = 0.5 * (_LOG_2PI + 2.0 * np.log(sigma) + diff * diff * inv_var)
    loss = float((wb * nll).sum())
    d_mu = wb * diff * inv_var
    d_sigma = wb * (1.0 / sigma - diff * diff / (sigma**3))
    return loss, d_mu, d_sigma


def mse_loss(
    pred: np.ndarray,
    target: np.ndarray,
    weights: Optional[np.ndarray] = None,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    w, norm = _weights_and_norm(pred.shape, weights, mask)
    diff = pred - target
    loss = float((w * diff * diff).sum() / norm)
    grad = 2.0 * w * diff / norm
    return loss, grad


def mae_loss(
    pred: np.ndarray,
    target: np.ndarray,
    weights: Optional[np.ndarray] = None,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    w, norm = _weights_and_norm(pred.shape, weights, mask)
    diff = pred - target
    loss = float((w * np.abs(diff)).sum() / norm)
    grad = w * np.sign(diff) / norm
    return loss, grad


def quantile_loss(
    pred: np.ndarray,
    target: np.ndarray,
    q: float,
    weights: Optional[np.ndarray] = None,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Pinball loss for quantile ``q``; gradient w.r.t. ``pred``."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q}")
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    w, norm = _weights_and_norm(pred.shape, weights, mask)
    diff = target - pred
    loss_elem = np.where(diff >= 0, q * diff, (q - 1.0) * diff)
    loss = float((w * loss_elem).sum() / norm)
    grad = w * np.where(diff >= 0, -q, 1.0 - q) / norm
    return loss, grad
