"""Multi-head attention and Transformer encoder/decoder blocks.

The paper compares the LSTM-based RankNet against a Transformer-based
implementation (8 attention heads, model dimension 32, GluonTS defaults).
This module provides the equivalent blocks with explicit backward passes:

* :class:`MultiHeadAttention` — scaled dot-product attention with an
  optional additive mask (used for causal decoding);
* :class:`PositionwiseFeedForward` — two dense layers with ReLU;
* :class:`TransformerEncoderLayer` / :class:`TransformerDecoderLayer` —
  pre-norm residual blocks;
* :func:`sinusoidal_positional_encoding` — fixed positional encodings.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .activations import softmax
from .layers import Dense, Dropout, LayerNorm
from .module import Module

__all__ = [
    "sinusoidal_positional_encoding",
    "causal_mask",
    "MultiHeadAttention",
    "PositionwiseFeedForward",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
]


def sinusoidal_positional_encoding(length: int, d_model: int) -> np.ndarray:
    """Standard sinusoidal positional encoding of shape ``(length, d_model)``."""
    position = np.arange(length)[:, None].astype(np.float64)
    div_term = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
    pe = np.zeros((length, d_model), dtype=np.float64)
    pe[:, 0::2] = np.sin(position * div_term)
    pe[:, 1::2] = np.cos(position * div_term[: pe[:, 1::2].shape[1]])
    return pe


def causal_mask(length: int) -> np.ndarray:
    """Additive mask forbidding attention to future positions."""
    mask = np.zeros((length, length), dtype=np.float64)
    mask[np.triu_indices(length, k=1)] = -1e9
    return mask


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head attention with backward pass."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        rng: np.random.Generator | int | None = None,
        name: str = "mha",
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.d_model = int(d_model)
        self.num_heads = int(num_heads)
        self.d_head = d_model // num_heads
        self.q_proj = Dense(d_model, d_model, rng=rng, name=f"{name}.q")
        self.k_proj = Dense(d_model, d_model, rng=rng, name=f"{name}.k")
        self.v_proj = Dense(d_model, d_model, rng=rng, name=f"{name}.v")
        self.out_proj = Dense(d_model, d_model, rng=rng, name=f"{name}.out")
        self._cache: List[tuple] = []

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def forward(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``query``: (B, Tq, D); ``key``/``value``: (B, Tk, D); mask additive (Tq, Tk)."""
        q = self._split_heads(self.q_proj.forward(query))
        k = self._split_heads(self.k_proj.forward(key))
        v = self._split_heads(self.v_proj.forward(value))
        scale = 1.0 / np.sqrt(self.d_head)
        scores = np.einsum("bhqd,bhkd->bhqk", q, k) * scale
        if mask is not None:
            scores = scores + mask[None, None, :, :]
        attn = softmax(scores, axis=-1)
        context = np.einsum("bhqk,bhkd->bhqd", attn, v)
        merged = self._merge_heads(context)
        out = self.out_proj.forward(merged)
        self._cache.append((q, k, v, attn, scale))
        return out

    def backward(self, grad_out: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(d_query, d_key, d_value)``."""
        if not self._cache:
            raise RuntimeError("backward called more times than forward")
        q, k, v, attn, scale = self._cache.pop()
        d_merged = self.out_proj.backward(grad_out)
        b, tq, _ = d_merged.shape
        d_context = d_merged.reshape(b, tq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)
        d_attn = np.einsum("bhqd,bhkd->bhqk", d_context, v)
        d_v = np.einsum("bhqk,bhqd->bhkd", attn, d_context)
        # softmax backward (per row over the key axis)
        d_scores = attn * (d_attn - np.sum(d_attn * attn, axis=-1, keepdims=True))
        d_scores = d_scores * scale
        d_q = np.einsum("bhqk,bhkd->bhqd", d_scores, k)
        d_k = np.einsum("bhqk,bhqd->bhkd", d_scores, q)
        d_query = self.q_proj.backward(self._merge_heads(d_q))
        d_key = self.k_proj.backward(self._merge_heads(d_k))
        d_value = self.v_proj.backward(self._merge_heads(d_v))
        return d_query, d_key, d_value

    def clear_cache(self) -> None:
        self._cache.clear()
        for proj in (self.q_proj, self.k_proj, self.v_proj, self.out_proj):
            proj.clear_cache()


class PositionwiseFeedForward(Module):
    """Two-layer feed-forward block applied at every position."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | int | None = None,
        name: str = "ffn",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.fc1 = Dense(d_model, d_ff, activation="relu", rng=rng, name=f"{name}.fc1")
        self.fc2 = Dense(d_ff, d_model, rng=rng, name=f"{name}.fc2")
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2.forward(self.dropout.forward(self.fc1.forward(x)))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.dropout.backward(self.fc2.backward(grad_out)))


class TransformerEncoderLayer(Module):
    """Post-norm Transformer encoder layer: self-attention + FFN with residuals."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | int | None = None,
        name: str = "enc",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.self_attn = MultiHeadAttention(d_model, num_heads, rng=rng, name=f"{name}.self")
        self.ffn = PositionwiseFeedForward(d_model, d_ff, dropout=dropout, rng=rng, name=f"{name}.ffn")
        self.norm1 = LayerNorm(d_model, name=f"{name}.norm1")
        self.norm2 = LayerNorm(d_model, name=f"{name}.norm2")

    def forward(self, x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
        attn_out = self.self_attn.forward(x, x, x, mask=mask)
        h = self.norm1.forward(x + attn_out)
        ffn_out = self.ffn.forward(h)
        return self.norm2.forward(h + ffn_out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        d_sum2 = self.norm2.backward(grad_out)
        d_h = d_sum2 + self.ffn.backward(d_sum2)
        d_sum1 = self.norm1.backward(d_h)
        dq, dk, dv = self.self_attn.backward(d_sum1)
        return d_sum1 + dq + dk + dv


class TransformerDecoderLayer(Module):
    """Decoder layer with causal self-attention and encoder-decoder attention."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | int | None = None,
        name: str = "dec",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.self_attn = MultiHeadAttention(d_model, num_heads, rng=rng, name=f"{name}.self")
        self.cross_attn = MultiHeadAttention(d_model, num_heads, rng=rng, name=f"{name}.cross")
        self.ffn = PositionwiseFeedForward(d_model, d_ff, dropout=dropout, rng=rng, name=f"{name}.ffn")
        self.norm1 = LayerNorm(d_model, name=f"{name}.norm1")
        self.norm2 = LayerNorm(d_model, name=f"{name}.norm2")
        self.norm3 = LayerNorm(d_model, name=f"{name}.norm3")

    def forward(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        self_mask: Optional[np.ndarray] = None,
        memory_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        attn_out = self.self_attn.forward(x, x, x, mask=self_mask)
        h1 = self.norm1.forward(x + attn_out)
        cross_out = self.cross_attn.forward(h1, memory, memory, mask=memory_mask)
        h2 = self.norm2.forward(h1 + cross_out)
        ffn_out = self.ffn.forward(h2)
        return self.norm3.forward(h2 + ffn_out)

    def backward(self, grad_out: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns ``(d_x, d_memory)``."""
        d_sum3 = self.norm3.backward(grad_out)
        d_h2 = d_sum3 + self.ffn.backward(d_sum3)
        d_sum2 = self.norm2.backward(d_h2)
        dq, dk_mem, dv_mem = self.cross_attn.backward(d_sum2)
        d_h1 = d_sum2 + dq
        d_memory = dk_mem + dv_mem
        d_sum1 = self.norm1.backward(d_h1)
        dq1, dk1, dv1 = self.self_attn.backward(d_sum1)
        d_x = d_sum1 + dq1 + dk1 + dv1
        return d_x, d_memory
