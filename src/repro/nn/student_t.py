"""Student-t likelihood head (heavy-tailed alternative to the Gaussian).

Rank positions around pit cycles have heavy-tailed innovations: most laps
the rank barely moves, but a pit stop causes a jump of many positions.  A
Student-t predictive distribution (as used by DeepAR for real-valued data
in GluonTS) captures those tails better than a Gaussian.  The head
parameterises location ``mu``, scale ``sigma`` (softplus) and degrees of
freedom ``nu`` (2 + softplus, so the variance exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import stats
from scipy.special import digamma, gammaln

from .activations import sigmoid, softplus
from .layers import Dense
from .module import Module

__all__ = ["StudentTParams", "StudentTOutput", "student_t_nll"]

_SIGMA_FLOOR = 1e-4
_NU_FLOOR = 2.0


@dataclass
class StudentTParams:
    """Parameters of a location-scale Student-t predictive distribution."""

    mu: np.ndarray
    sigma: np.ndarray
    nu: np.ndarray

    def sample(self, rng: np.random.Generator, n_samples: int = 1) -> np.ndarray:
        t = rng.standard_t(np.broadcast_to(self.nu, (n_samples,) + self.nu.shape))
        return self.mu[None, ...] + self.sigma[None, ...] * t

    def quantile(self, q: float) -> np.ndarray:
        return self.mu + self.sigma * stats.t.ppf(q, df=self.nu)


def student_t_nll(
    z: np.ndarray, mu: np.ndarray, sigma: np.ndarray, nu: np.ndarray
) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Mean negative log-likelihood and gradients w.r.t. ``mu``, ``sigma``, ``nu``."""
    z = np.asarray(z, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    nu = np.asarray(nu, dtype=np.float64)
    n = max(z.size, 1)
    t = (z - mu) / sigma
    q = 1.0 + t * t / nu
    nll = (
        -gammaln((nu + 1.0) / 2.0)
        + gammaln(nu / 2.0)
        + 0.5 * np.log(np.pi * nu)
        + np.log(sigma)
        + (nu + 1.0) / 2.0 * np.log(q)
    )
    loss = float(nll.sum() / n)
    # gradients
    d_t = (nu + 1.0) * t / (nu * q)
    d_mu = -d_t / sigma / n
    d_sigma = (1.0 / sigma - d_t * t / sigma) / n
    d_nu = (
        -0.5 * digamma((nu + 1.0) / 2.0)
        + 0.5 * digamma(nu / 2.0)
        + 0.5 / nu
        + 0.5 * np.log(q)
        - (nu + 1.0) / 2.0 * (t * t) / (nu * nu * q)
    ) / n
    return loss, d_mu, d_sigma, d_nu


class StudentTOutput(Module):
    """Projects hidden states to ``(mu, sigma, nu)`` of a Student-t likelihood."""

    def __init__(
        self,
        hidden_dim: int,
        rng: np.random.Generator | int | None = None,
        name: str = "student_t_out",
    ) -> None:
        super().__init__()
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.hidden_dim = int(hidden_dim)
        self.mu_head = Dense(hidden_dim, 1, rng=rng, name=f"{name}.mu")
        self.sigma_head = Dense(hidden_dim, 1, rng=rng, name=f"{name}.sigma")
        self.nu_head = Dense(hidden_dim, 1, rng=rng, name=f"{name}.nu")
        self._cache: List[tuple] = []

    def forward(self, h: np.ndarray) -> StudentTParams:
        mu = self.mu_head.forward(h)[..., 0]
        pre_sigma = self.sigma_head.forward(h)[..., 0]
        pre_nu = self.nu_head.forward(h)[..., 0]
        sigma = softplus(pre_sigma) + _SIGMA_FLOOR
        nu = softplus(pre_nu) + _NU_FLOOR
        self._cache.append((pre_sigma, pre_nu))
        return StudentTParams(mu=mu, sigma=sigma, nu=nu)

    def backward(self, d_mu: np.ndarray, d_sigma: np.ndarray, d_nu: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError("backward called more times than forward")
        pre_sigma, pre_nu = self._cache.pop()
        d_pre_sigma = np.asarray(d_sigma, dtype=np.float64) * sigmoid(pre_sigma)
        d_pre_nu = np.asarray(d_nu, dtype=np.float64) * sigmoid(pre_nu)
        dh = self.nu_head.backward(d_pre_nu[..., None])
        dh = dh + self.sigma_head.backward(d_pre_sigma[..., None])
        dh = dh + self.mu_head.backward(np.asarray(d_mu, dtype=np.float64)[..., None])
        return dh

    def clear_cache(self) -> None:
        self._cache.clear()
        self.mu_head.clear_cache()
        self.sigma_head.clear_cache()
        self.nu_head.clear_cache()
