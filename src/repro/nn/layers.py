"""Feed-forward building blocks: Dense, Embedding, Dropout, LayerNorm, MLP.

All layers cache their forward intermediates on an internal stack so the
same layer instance can be applied multiple times inside one computation
(e.g. a shared projection applied at every decoder time step); ``backward``
must then be called once per ``forward`` call, in reverse order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import initializers as init
from .activations import Activation, get_activation, sigmoid, softplus
from .module import Module, Parameter

__all__ = [
    "Dense",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "MultiGaussianOutput",
    "Sequential",
    "MLP",
]


class Dense(Module):
    """Fully connected layer ``y = act(x @ W + b)``.

    Supports inputs of shape ``(..., in_dim)``; leading dimensions are
    flattened for the matrix product and restored on output.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: Optional[str] = None,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
        name: str = "dense",
    ) -> None:
        super().__init__()
        self.in_dim = int(in_dim)
        self.out_dim = int(out_dim)
        self.activation: Activation = get_activation(activation)
        self.weight = Parameter(init.xavier_uniform((in_dim, out_dim), rng=rng), f"{name}.weight")
        self.bias = Parameter(init.zeros((out_dim,)), f"{name}.bias") if bias else None
        self._cache: List[tuple] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_dim:
            raise ValueError(f"expected last dim {self.in_dim}, got {x.shape}")
        flat = x.reshape(-1, self.in_dim)
        pre = flat @ self.weight.data
        if self.bias is not None:
            pre = pre + self.bias.data
        out = self.activation(pre)
        self._cache.append((flat, pre, out, x.shape))
        return out.reshape(*x.shape[:-1], self.out_dim)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the input gradient."""
        if not self._cache:
            raise RuntimeError("backward called more times than forward")
        flat, pre, out, x_shape = self._cache.pop()
        grad = np.asarray(grad_out, dtype=np.float64).reshape(-1, self.out_dim)
        grad_pre = grad * self.activation.grad(pre, out)
        self.weight.grad += flat.T @ grad_pre
        if self.bias is not None:
            self.bias.grad += grad_pre.sum(axis=0)
        grad_x = grad_pre @ self.weight.data.T
        return grad_x.reshape(x_shape)

    def clear_cache(self) -> None:
        self._cache.clear()


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | int | None = None,
        name: str = "embedding",
    ) -> None:
        super().__init__()
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), std=0.1, rng=rng),
            f"{name}.weight",
        )
        self._cache: List[np.ndarray] = []

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding ids must be in [0, {self.num_embeddings}), got "
                f"range [{ids.min()}, {ids.max()}]"
            )
        self._cache.append(ids)
        return self.weight.data[ids]

    def backward(self, grad_out: np.ndarray) -> None:
        if not self._cache:
            raise RuntimeError("backward called more times than forward")
        ids = self._cache.pop()
        flat_ids = ids.reshape(-1)
        flat_grad = np.asarray(grad_out, dtype=np.float64).reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, flat_ids, flat_grad)
        return None

    def clear_cache(self) -> None:
        self._cache.clear()


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, rate: float = 0.1, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._cache: List[Optional[np.ndarray]] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._cache.append(None)
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep).astype(np.float64) / keep
        self._cache.append(mask)
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError("backward called more times than forward")
        mask = self._cache.pop()
        if mask is None:
            return grad_out
        return grad_out * mask

    def clear_cache(self) -> None:
        self._cache.clear()


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5, name: str = "layernorm") -> None:
        super().__init__()
        self.dim = int(dim)
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((dim,)), f"{name}.gamma")
        self.beta = Parameter(init.zeros((dim,)), f"{name}.beta")
        self._cache: List[tuple] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache.append((x_hat, inv_std))
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError("backward called more times than forward")
        x_hat, inv_std = self._cache.pop()
        grad_out = np.asarray(grad_out, dtype=np.float64)
        axes = tuple(range(grad_out.ndim - 1))
        self.gamma.grad += (grad_out * x_hat).sum(axis=axes)
        self.beta.grad += grad_out.sum(axis=axes)
        d_xhat = grad_out * self.gamma.data
        n = self.dim
        grad_x = (
            d_xhat
            - d_xhat.mean(axis=-1, keepdims=True)
            - x_hat * (d_xhat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std
        return grad_x

    def clear_cache(self) -> None:
        self._cache.clear()


class MultiGaussianOutput(Module):
    """Fused Gaussian likelihood head over ``target_dim`` dimensions.

    Replaces ``target_dim`` separate :class:`~repro.nn.distributions.
    GaussianOutput` heads (one ``(H, 1)`` GEMV per head per call for mu and
    sigma each) with a single ``(H, 2*D)`` projection:

        out = h @ W + b
        mu    = out[..., :D]
        sigma = softplus(out[..., D:]) + sigma_floor

    The weight columns are initialised with the exact per-head draw
    sequence of the separate heads (mu then sigma, head by head), so a
    model built from the same seed carries identical parameter values.
    Supports inputs of any shape ``(..., H)`` — in particular the fused
    training path's ``(B, K, H)`` decoder block — and a cache-free
    evaluation mode (``with_cache=False``).
    """

    def __init__(
        self,
        hidden_dim: int,
        target_dim: int = 1,
        rng: np.random.Generator | int | None = None,
        sigma_floor: float = 1e-4,
        name: str = "gaussian_out",
    ) -> None:
        super().__init__()
        if target_dim < 1:
            raise ValueError("target_dim must be >= 1")
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.hidden_dim = int(hidden_dim)
        self.target_dim = int(target_dim)
        self.sigma_floor = float(sigma_floor)
        weight = np.empty((hidden_dim, 2 * target_dim), dtype=np.float64)
        for d in range(target_dim):
            weight[:, d : d + 1] = init.xavier_uniform((hidden_dim, 1), rng=rng)
            weight[:, target_dim + d : target_dim + d + 1] = init.xavier_uniform(
                (hidden_dim, 1), rng=rng
            )
        self.weight = Parameter(weight, f"{name}.weight")
        self.bias = Parameter(init.zeros((2 * target_dim,)), f"{name}.bias")
        self._cache: List[tuple] = []

    def forward(
        self, h: np.ndarray, with_cache: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``h`` is ``(..., H)``; returns ``(mu, sigma)`` of shape ``(..., D)``."""
        h = np.asarray(h, dtype=np.float64)
        if h.shape[-1] != self.hidden_dim:
            raise ValueError(f"expected last dim {self.hidden_dim}, got {h.shape}")
        flat = np.ascontiguousarray(h.reshape(-1, self.hidden_dim))
        out = flat @ self.weight.data + self.bias.data
        d = self.target_dim
        mu = out[:, :d]
        pre_sigma = out[:, d:]
        sigma = softplus(pre_sigma) + self.sigma_floor
        if with_cache:
            self._cache.append((flat, pre_sigma, h.shape))
        lead = h.shape[:-1]
        return mu.reshape(*lead, d), sigma.reshape(*lead, d)

    def backward(self, d_mu: np.ndarray, d_sigma: np.ndarray) -> np.ndarray:
        """Gradients w.r.t. ``(mu, sigma)`` of shape ``(..., D)`` -> dh."""
        if not self._cache:
            raise RuntimeError("backward called more times than forward")
        flat, pre_sigma, h_shape = self._cache.pop()
        d = self.target_dim
        grad = np.empty((flat.shape[0], 2 * d), dtype=np.float64)
        grad[:, :d] = np.asarray(d_mu, dtype=np.float64).reshape(-1, d)
        grad[:, d:] = np.asarray(d_sigma, dtype=np.float64).reshape(-1, d) * sigmoid(pre_sigma)
        self.weight.grad += flat.T @ grad
        self.bias.grad += grad.sum(axis=0)
        dh = grad @ self.weight.data.T
        return dh.reshape(h_shape)

    def clear_cache(self) -> None:
        self._cache.clear()


class Sequential(Module):
    """Chains layers that implement ``forward``/``backward``."""

    def __init__(self, layers: Sequence[Module]) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class MLP(Sequential):
    """Multi-layer perceptron with a configurable hidden activation."""

    def __init__(
        self,
        in_dim: int,
        hidden_dims: Sequence[int],
        out_dim: int,
        activation: str = "relu",
        out_activation: Optional[str] = None,
        dropout: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        layers: List[Module] = []
        prev = in_dim
        for i, h in enumerate(hidden_dims):
            layers.append(Dense(prev, h, activation=activation, rng=rng, name=f"mlp.{i}"))
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
            prev = h
        layers.append(Dense(prev, out_dim, activation=out_activation, rng=rng, name="mlp.out"))
        super().__init__(layers)
        self.in_dim = in_dim
        self.out_dim = out_dim
