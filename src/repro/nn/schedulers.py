"""Learning-rate schedules and early stopping.

The paper (Table IV, §IV-C) trains with ADAM and "an early stopping
mechanism that decays the learning rate when loss on the validation set does
not improve for 10 epochs until reaching a minimum value" with decay factor
0.5 — exactly the behaviour of :class:`ReduceLROnPlateau` combined with
:class:`EarlyStopping`.
"""

from __future__ import annotations

from typing import Optional

from .optimizers import Optimizer

__all__ = ["StepDecay", "ReduceLROnPlateau", "EarlyStopping"]


class StepDecay:
    """Multiplies the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        if self.epoch % self.step_size == 0:
            self.optimizer.set_lr(self.optimizer.lr * self.gamma)
        return self.optimizer.lr

    def state_dict(self) -> dict:
        return {"epoch": self.epoch}

    def load_state_dict(self, state: dict) -> None:
        self.epoch = int(state["epoch"])


class ReduceLROnPlateau:
    """Decay the learning rate when the monitored metric stops improving."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 10,
        min_lr: float = 1e-6,
        min_delta: float = 1e-6,
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.factor = float(factor)
        self.patience = int(patience)
        self.min_lr = float(min_lr)
        self.min_delta = float(min_delta)
        self.best: Optional[float] = None
        self.num_bad_epochs = 0

    def step(self, metric: float) -> float:
        """Report the latest validation metric; returns the (possibly new) lr."""
        if self.best is None or metric < self.best - self.min_delta:
            self.best = float(metric)
            self.num_bad_epochs = 0
        else:
            self.num_bad_epochs += 1
            if self.num_bad_epochs > self.patience:
                new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.optimizer.set_lr(new_lr)
                self.num_bad_epochs = 0
        return self.optimizer.lr

    @property
    def at_min_lr(self) -> bool:
        return self.optimizer.lr <= self.min_lr * (1.0 + 1e-9)

    def state_dict(self) -> dict:
        return {"best": self.best, "num_bad_epochs": self.num_bad_epochs}

    def load_state_dict(self, state: dict) -> None:
        self.best = None if state["best"] is None else float(state["best"])
        self.num_bad_epochs = int(state["num_bad_epochs"])


class EarlyStopping:
    """Stop training when the validation metric has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 20, min_delta: float = 1e-6) -> None:
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best: Optional[float] = None
        self.best_epoch = -1
        self.num_bad_epochs = 0
        self._epoch = -1

    def step(self, metric: float) -> bool:
        """Report a metric; returns ``True`` when training should stop."""
        self._epoch += 1
        if self.best is None or metric < self.best - self.min_delta:
            self.best = float(metric)
            self.best_epoch = self._epoch
            self.num_bad_epochs = 0
            return False
        self.num_bad_epochs += 1
        return self.num_bad_epochs >= self.patience

    @property
    def should_stop(self) -> bool:
        return self.num_bad_epochs >= self.patience

    def state_dict(self) -> dict:
        return {
            "best": self.best,
            "best_epoch": self.best_epoch,
            "num_bad_epochs": self.num_bad_epochs,
            "epoch": self._epoch,
        }

    def load_state_dict(self, state: dict) -> None:
        self.best = None if state["best"] is None else float(state["best"])
        self.best_epoch = int(state["best_epoch"])
        self.num_bad_epochs = int(state["num_bad_epochs"])
        self._epoch = int(state["epoch"])
