"""Precision policy for the low-precision inference tier.

The float64 serving path is the *exact reference*: it is gated byte-identical
across every refactor.  This module defines the cheaper tiers beneath it —

* ``float32`` — every weight, state and decode buffer cast to ``np.float32``
  so the recurrent GEMMs and dense transcendentals run single precision
  end to end (no silent upcasts: the engines assert the compute dtype after
  every kernel);
* ``int8`` — weights stored per-output-channel symmetrically quantised to
  signed 8-bit (``scale_j = max|w[:, j]| / 127``), dequantised once into a
  float32 operand at conversion time and then ridden through the same f32
  GEMM kernels.  The quantisation payload (``q`` + ``scale``) is what the
  artifact layer persists.

Neither tier claims byte identity; their contract is *error-bounded*
rank-forecast parity against the float64 reference, gated per family in
``benchmarks/test_bench_precision.py``.

This module is also the single dtype-policy choke point: everything in
``nn/`` / ``serving/`` that used to hard-code ``dtype=np.float64`` on a
precision-covered path routes through :func:`working_array` /
:func:`working_empty` / :func:`working_zeros` so the compute dtype is
decided in exactly one place.
"""

from __future__ import annotations

import copy
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "PRECISIONS",
    "DEFAULT_PRECISION",
    "normalize_precision",
    "compute_dtype",
    "working_array",
    "working_empty",
    "working_zeros",
    "assert_dtype",
    "quantize_int8",
    "dequantize_int8",
    "convert_array",
    "convert_module",
]

#: supported precision tiers, in decreasing cost order
PRECISIONS: Tuple[str, ...] = ("float64", "float32", "int8")

#: the exact reference tier — every wire request defaults to it
DEFAULT_PRECISION = "float64"


def normalize_precision(value: Optional[str], default: str = DEFAULT_PRECISION) -> str:
    """Validate a precision name (``None`` means the default tier)."""
    if value is None:
        return default
    precision = str(value)
    if precision not in PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; supported: {', '.join(PRECISIONS)}"
        )
    return precision


def compute_dtype(precision: str) -> np.dtype:
    """The dtype the kernels run in for a tier.

    ``int8`` is a *storage* format: its weights are dequantised into float32
    operands once at conversion time, so its compute dtype is float32.
    """
    return np.dtype(np.float64 if normalize_precision(precision) == "float64" else np.float32)


# ----------------------------------------------------------------------
# dtype-policy helpers (the one place the compute dtype is applied)
# ----------------------------------------------------------------------
def working_array(x, dtype=np.float64, contiguous: bool = False) -> np.ndarray:
    """``np.asarray`` under the active compute dtype."""
    if contiguous:
        return np.ascontiguousarray(x, dtype=dtype)
    return np.asarray(x, dtype=dtype)


def working_empty(shape, dtype=np.float64) -> np.ndarray:
    """Uninitialised compute buffer under the active compute dtype."""
    return np.empty(shape, dtype=dtype)


def working_zeros(shape, dtype=np.float64) -> np.ndarray:
    """Zeroed compute buffer under the active compute dtype."""
    return np.zeros(shape, dtype=dtype)


def assert_dtype(array: np.ndarray, dtype, label: str = "array") -> np.ndarray:
    """Guard against silent upcasts on precision-covered paths."""
    if array.dtype != np.dtype(dtype):
        raise AssertionError(
            f"{label} silently changed dtype: expected {np.dtype(dtype)}, "
            f"got {array.dtype}"
        )
    return array


# ----------------------------------------------------------------------
# int8 weight quantisation (per-output-channel symmetric)
# ----------------------------------------------------------------------
def quantize_int8(w: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantisation of a weight matrix.

    ``w`` is ``(in, out)`` — the orientation every ``stable_matmul`` operand
    uses — so the channel axis is the *last* one: one float32 scale per
    output column, ``scale_j = max|w[:, j]| / 127`` (all-zero columns get
    scale 1 so dequantisation stays exact).  Returns ``(q, scale)`` with
    ``q`` int8 clipped to ±127 (the -128 code is never used, keeping the
    scheme symmetric).  1-D vectors (biases) quantise per-element the same
    way by treating each element as its own channel.
    """
    w = np.asarray(w, dtype=np.float64)
    absmax = np.max(np.abs(w), axis=0) if w.ndim >= 2 else np.abs(w)
    scale = np.where(absmax > 0.0, absmax / 127.0, 1.0).astype(np.float32)
    q = np.clip(np.rint(w / scale.astype(np.float64)), -127, 127).astype(np.int8)
    return q, scale


def dequantize_int8(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Expand an int8 payload back into the float32 GEMM operand."""
    return (q.astype(np.float32) * np.asarray(scale, dtype=np.float32)).astype(
        np.float32
    )


def convert_array(data: np.ndarray, precision: str) -> np.ndarray:
    """One parameter array under a precision tier (float64 passes through)."""
    precision = normalize_precision(precision)
    if precision == "float64":
        return np.asarray(data, dtype=np.float64)
    if precision == "float32":
        return np.asarray(data, dtype=np.float32)
    q, scale = quantize_int8(data)
    return dequantize_int8(q, scale)


def convert_module(module, precision: str):
    """A converted replica of ``module`` for the requested tier.

    ``float64`` returns the module itself (the reference path must not pay a
    copy).  Lower tiers deep-copy the module, then overwrite every
    parameter's ``data`` in place with the converted float32 array —
    assigning ``p.data`` directly on the copy deliberately bypasses
    :class:`~repro.nn.module.Parameter`'s float64 cast, which only training
    needs.  The original module is never touched, so training and the
    float64 serving path keep their bit-exact weights.
    """
    precision = normalize_precision(precision)
    if precision == "float64":
        return module
    replica = copy.deepcopy(module)
    for _, param in replica.named_parameters():
        param.data = convert_array(param.data, precision)
        param.grad = np.zeros_like(param.data)
    return replica
