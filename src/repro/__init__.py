"""repro — reproduction of "Rank Position Forecasting in Car Racing" (IPDPS 2021).

Sub-packages
------------
``repro.nn``
    NumPy deep-learning framework (LSTM/Transformer encoder-decoders,
    Gaussian likelihood heads, ADAM, training loop).
``repro.simulation``
    Stochastic IndyCar race simulator producing the per-lap telemetry the
    paper's models consume (substitute for the proprietary dataset).
``repro.data``
    Feature engineering (Table I), sliding-window datasets, stint
    extraction, scalers and batch loaders.
``repro.models``
    CurRank, ARIMA, RandomForest/SVM/XGBoost, DeepAR and the RankNet
    family (Oracle / MLP / Joint, LSTM or Transformer backbones).
``repro.evaluation``
    MAE / Top1Acc / SignAcc / quantile-risk metrics and the TaskA / TaskB
    evaluators.
``repro.serving``
    Fleet-batched Monte-Carlo inference engine: flattens cars x samples
    into one recurrent batch, deduplicates warm-ups and carries per-car
    states between forecast origins.
``repro.profiling``
    Training-efficiency substrate: kernel benchmarks, roofline model,
    analytic device models (CPU / GPU / cuDNN / Vector Engine), plus the
    batched-vs-per-car inference breakdown.
``repro.experiments``
    One module per table and figure of the paper, plus a CLI runner.
"""

__version__ = "1.1.0"

__all__ = [
    "nn",
    "simulation",
    "data",
    "models",
    "evaluation",
    "serving",
    "profiling",
    "experiments",
    "__version__",
]
