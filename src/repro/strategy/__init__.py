"""Pit-strategy optimisation on top of the probabilistic rank forecasters.

This sub-package implements the application the paper's conclusion points
to ("RankNet is promising to be used as a tool to investigate and optimize
the pit stop strategy"): counterfactual covariate plans for candidate
strategies and a Monte-Carlo evaluator that ranks them.
"""

from .optimizer import PitStrategyOptimizer, StrategyOutcome, StrategySweepPoint
from .plans import build_strategy_plan, candidate_single_stop_plans

__all__ = [
    "PitStrategyOptimizer",
    "StrategyOutcome",
    "StrategySweepPoint",
    "build_strategy_plan",
    "candidate_single_stop_plans",
]
