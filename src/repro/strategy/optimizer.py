"""Pit-strategy evaluation on top of a trained rank forecaster.

Given a forecaster that conditions on the future race status (RankNet with
oracle-style covariate input), :class:`PitStrategyOptimizer` evaluates a set
of candidate strategies ("pit in k laps") by Monte-Carlo forecasting the
car's rank under each counterfactual covariate plan and ranking the
candidates by their expected rank at the end of the window (ties broken by
the probability of gaining positions).

Two granularities are exposed:

* :meth:`PitStrategyOptimizer.evaluate` answers the single-origin question
  ("we are at lap L — when should we stop?") with one engine submit;
* :meth:`PitStrategyOptimizer.sweep` answers it for a whole race window at
  once: every (origin, pit-in-k) candidate becomes one request of a single
  carry-mode fleet submit, so the warm-up over the shared lap history runs
  once per origin (deduplicated across candidates) and is advanced
  incrementally between consecutive origins instead of being replayed from
  the window start.  This turns the per-call optimizer into the race-scale
  decode workload the fused engine is built for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..data.features import CarFeatureSeries
from ..models.base import DEFAULT_FIELD_SIZE, clip_rank
from ..models.deep.ranknet import DeepForecasterBase
from ..nn.precision import normalize_precision
from ..serving.engine import FleetForecaster
from ..serving.requests import ForecastRequest, spawn_request_rngs
from .plans import candidate_single_stop_plans

__all__ = ["StrategyOutcome", "StrategySweepPoint", "PitStrategyOptimizer"]


@dataclass
class StrategyOutcome:
    """Forecasted consequence of one candidate strategy."""

    pit_in_laps: int
    expected_final_rank: float
    median_final_rank: float
    p_gain: float       # probability of finishing the window ahead of the current rank
    p_lose: float
    rank_samples_std: float

    def as_row(self) -> dict:
        return {
            "pit_in_laps": self.pit_in_laps,
            "expected_final_rank": self.expected_final_rank,
            "median_final_rank": self.median_final_rank,
            "p_gain": self.p_gain,
            "p_lose": self.p_lose,
            "uncertainty": self.rank_samples_std,
        }


@dataclass
class StrategySweepPoint:
    """All candidate outcomes for one forecast origin of a rolling sweep."""

    origin: int
    current_rank: float
    outcomes: List[StrategyOutcome]

    @property
    def best(self) -> StrategyOutcome:
        """The candidate with the best (lowest) expected final rank."""
        if not self.outcomes:
            raise ValueError(f"no candidate strategies at origin {self.origin}")
        return min(self.outcomes, key=lambda o: (o.expected_final_rank, -o.p_gain))


class PitStrategyOptimizer:
    """Evaluates and ranks candidate pit strategies for one car.

    Parameters
    ----------
    forecaster:
        A fitted covariate-conditioned deep forecaster (RankNet oracle/mlp).
    n_samples:
        Monte-Carlo trajectories per candidate plan.
    field_size:
        Upper bound of the rank clip.  Defaults to the field size the
        forecaster recorded at fit time (the largest rank observed in its
        training data), falling back to
        :data:`repro.models.base.DEFAULT_FIELD_SIZE` — the same constant
        the TaskA evaluator uses — rather than a hard-coded literal.
    """

    def __init__(
        self,
        forecaster: DeepForecasterBase,
        n_samples: int = 100,
        field_size: Optional[int] = None,
        precision: str = "float64",
    ) -> None:
        if not isinstance(forecaster, DeepForecasterBase):
            raise TypeError("the strategy optimizer needs a covariate-conditioned deep forecaster")
        if forecaster.model is None:
            raise ValueError("the forecaster must be fitted before strategy optimisation")
        if forecaster.feature_spec.num_covariates == 0:
            raise ValueError(
                "the forecaster does not condition on race-status covariates; "
                "use a RankNet oracle/mlp variant"
            )
        self.forecaster = forecaster
        self.n_samples = int(n_samples)
        self.precision = normalize_precision(precision)
        if field_size is not None:
            self.field_size = int(field_size)
        else:
            self.field_size = int(forecaster.field_size or DEFAULT_FIELD_SIZE)

    # ------------------------------------------------------------------
    def _engine(self, mode: Optional[str] = None) -> FleetForecaster:
        """The one engine handle every evaluation of this optimizer shares.

        Resolved through the forecaster (which keeps a single engine per
        mode and rebinds it on refit) instead of being constructed per
        call, so rolling sweeps keep hitting the same warm-up state cache.
        """
        return self.forecaster.fleet_engine(mode, precision=self.precision)

    def _plan_request(
        self,
        series: CarFeatureSeries,
        origin: int,
        plan: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> ForecastRequest:
        fc = self.forecaster
        return fc._fleet_request(
            series,
            origin,
            fc._select(plan),
            self.n_samples,
            rng if rng is not None else fc.rng,
            key=("strategy", series.race_id, series.car_id),
        )

    def _outcome(self, candidate: dict, samples: np.ndarray, current_rank: float) -> StrategyOutcome:
        final = clip_rank(samples[:, -1], self.field_size)
        return StrategyOutcome(
            pit_in_laps=candidate["pit_in_laps"],
            expected_final_rank=float(final.mean()),
            median_final_rank=float(np.median(final)),
            p_gain=float(np.mean(final < current_rank - 0.5)),
            p_lose=float(np.mean(final > current_rank + 0.5)),
            rank_samples_std=float(final.std()),
        )

    def evaluate_plan(
        self, series: CarFeatureSeries, origin: int, plan: np.ndarray
    ) -> np.ndarray:
        """Rank samples ``(n_samples, horizon)`` under one covariate plan."""
        engine = self._engine()
        samples = engine.submit([self._plan_request(series, origin, plan)])[0]
        return clip_rank(samples, self.field_size)

    def evaluate(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        earliest: int = 1,
        latest: Optional[int] = None,
        step: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> List[StrategyOutcome]:
        """Evaluate every "pit in k laps" candidate inside the horizon.

        All counterfactual covariate plans are submitted to the fleet
        engine in one batch: the warm-up over the shared lap history runs
        once and only the decode differs per candidate.  ``rng`` overrides
        the forecaster's shared stream as the root the per-candidate
        streams are spawned from — the serving gateway passes the
        request's explicit stream here so a sweep over the wire reproduces
        the in-process one regardless of what else the model served.
        """
        current_rank = float(series.rank[origin])
        candidates = list(
            candidate_single_stop_plans(
                series, origin, horizon, earliest=earliest, latest=latest, step=step
            )
        )
        if not candidates:
            return []
        rngs = spawn_request_rngs(rng if rng is not None else self.forecaster.rng, len(candidates))
        requests = [
            self._plan_request(series, origin, candidate["plan"], rng=rng)
            for candidate, rng in zip(candidates, rngs)
        ]
        results = self._engine().submit(requests)
        return [
            self._outcome(candidate, samples, current_rank)
            for candidate, samples in zip(candidates, results)
        ]

    def best(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        **kwargs,
    ) -> StrategyOutcome:
        """The candidate with the best (lowest) expected final rank."""
        outcomes = self.evaluate(series, origin, horizon, **kwargs)
        if not outcomes:
            raise ValueError("no candidate strategies inside the horizon")
        return min(outcomes, key=lambda o: (o.expected_final_rank, -o.p_gain))

    # ------------------------------------------------------------------
    # rolling race-window sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        series: CarFeatureSeries,
        origins: Sequence[int],
        horizon: int,
        earliest: int = 1,
        latest: Optional[int] = None,
        step: int = 1,
        mode: str = "carry",
        rng: Optional[np.random.Generator] = None,
    ) -> List[StrategySweepPoint]:
        """Evaluate every (origin, pit-in-k) candidate of a race window at once.

        All candidates of all origins are flattened into **one** submit of
        the carry-mode fleet engine:

        * within one origin, the candidate plans share a single warm-up
          (same car, same history — the engine deduplicates it);
        * between consecutive origins, the carried per-car state advances
          incrementally (one teacher-forcing step per origin) instead of
          replaying the whole history window;
        * every candidate draws from its own spawned RNG stream, so the
          samples do not depend on how the engine groups or chunks the
          batch.  ``rng``, when given, replaces the forecaster's shared
          stream as the spawn root (explicit per-request reproducibility —
          the wire API's contract).

        Returns one :class:`StrategySweepPoint` per origin, in ascending
        origin order.
        """
        origins = sorted({int(o) for o in origins})
        per_origin: List[tuple] = []  # (origin, current_rank, candidates)
        requests: List[ForecastRequest] = []
        flat_candidates: List[dict] = []
        for origin in origins:
            candidates = list(
                candidate_single_stop_plans(
                    series, origin, horizon, earliest=earliest, latest=latest, step=step
                )
            )
            per_origin.append((origin, float(series.rank[origin]), candidates))
            flat_candidates.extend(candidates)
        if flat_candidates:
            rngs = spawn_request_rngs(
                rng if rng is not None else self.forecaster.rng, len(flat_candidates)
            )
            i = 0
            for origin, _, candidates in per_origin:
                for candidate in candidates:
                    requests.append(
                        self._plan_request(series, origin, candidate["plan"], rng=rngs[i])
                    )
                    i += 1
        results = self._engine(mode).submit(requests)
        points: List[StrategySweepPoint] = []
        i = 0
        for origin, current_rank, candidates in per_origin:
            outcomes = [
                self._outcome(candidate, results[i + j], current_rank)
                for j, candidate in enumerate(candidates)
            ]
            i += len(candidates)
            points.append(
                StrategySweepPoint(origin=origin, current_rank=current_rank, outcomes=outcomes)
            )
        return points
