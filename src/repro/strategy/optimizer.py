"""Pit-strategy evaluation on top of a trained rank forecaster.

Given a forecaster that conditions on the future race status (RankNet with
oracle-style covariate input), :class:`PitStrategyOptimizer` evaluates a set
of candidate strategies ("pit in k laps") by Monte-Carlo forecasting the
car's rank under each counterfactual covariate plan and ranking the
candidates by their expected rank at the end of the window (ties broken by
the probability of gaining positions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..data.features import CarFeatureSeries
from ..models.deep.ranknet import DeepForecasterBase
from ..serving.requests import ForecastRequest, spawn_request_rngs
from .plans import candidate_single_stop_plans

__all__ = ["StrategyOutcome", "PitStrategyOptimizer"]


@dataclass
class StrategyOutcome:
    """Forecasted consequence of one candidate strategy."""

    pit_in_laps: int
    expected_final_rank: float
    median_final_rank: float
    p_gain: float       # probability of finishing the window ahead of the current rank
    p_lose: float
    rank_samples_std: float

    def as_row(self) -> dict:
        return {
            "pit_in_laps": self.pit_in_laps,
            "expected_final_rank": self.expected_final_rank,
            "median_final_rank": self.median_final_rank,
            "p_gain": self.p_gain,
            "p_lose": self.p_lose,
            "uncertainty": self.rank_samples_std,
        }


class PitStrategyOptimizer:
    """Evaluates and ranks candidate pit strategies for one car."""

    def __init__(
        self,
        forecaster: DeepForecasterBase,
        n_samples: int = 100,
    ) -> None:
        if not isinstance(forecaster, DeepForecasterBase):
            raise TypeError("the strategy optimizer needs a covariate-conditioned deep forecaster")
        if forecaster.model is None:
            raise ValueError("the forecaster must be fitted before strategy optimisation")
        if forecaster.feature_spec.num_covariates == 0:
            raise ValueError(
                "the forecaster does not condition on race-status covariates; "
                "use a RankNet oracle/mlp variant"
            )
        self.forecaster = forecaster
        self.n_samples = int(n_samples)

    # ------------------------------------------------------------------
    def _plan_request(
        self,
        series: CarFeatureSeries,
        origin: int,
        plan: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> ForecastRequest:
        fc = self.forecaster
        return fc._fleet_request(
            series,
            origin,
            fc._select(plan),
            self.n_samples,
            rng if rng is not None else fc.rng,
            key=("strategy", series.race_id, series.car_id),
        )

    def evaluate_plan(
        self, series: CarFeatureSeries, origin: int, plan: np.ndarray
    ) -> np.ndarray:
        """Rank samples ``(n_samples, horizon)`` under one covariate plan."""
        engine = self.forecaster.fleet_engine()
        samples = engine.submit([self._plan_request(series, origin, plan)])[0]
        return np.clip(samples, 1.0, 33.0)

    def evaluate(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        earliest: int = 1,
        latest: Optional[int] = None,
        step: int = 1,
    ) -> List[StrategyOutcome]:
        """Evaluate every "pit in k laps" candidate inside the horizon.

        All counterfactual covariate plans are submitted to the fleet
        engine in one batch: the warm-up over the shared lap history runs
        once and only the decode differs per candidate.
        """
        current_rank = float(series.rank[origin])
        candidates = list(
            candidate_single_stop_plans(
                series, origin, horizon, earliest=earliest, latest=latest, step=step
            )
        )
        if not candidates:
            return []
        rngs = spawn_request_rngs(self.forecaster.rng, len(candidates))
        requests = [
            self._plan_request(series, origin, candidate["plan"], rng=rng)
            for candidate, rng in zip(candidates, rngs)
        ]
        results = self.forecaster.fleet_engine().submit(requests)
        outcomes: List[StrategyOutcome] = []
        for candidate, samples in zip(candidates, results):
            final = np.clip(samples[:, -1], 1.0, 33.0)
            outcomes.append(
                StrategyOutcome(
                    pit_in_laps=candidate["pit_in_laps"],
                    expected_final_rank=float(final.mean()),
                    median_final_rank=float(np.median(final)),
                    p_gain=float(np.mean(final < current_rank - 0.5)),
                    p_lose=float(np.mean(final > current_rank + 0.5)),
                    rank_samples_std=float(final.std()),
                )
            )
        return outcomes

    def best(
        self,
        series: CarFeatureSeries,
        origin: int,
        horizon: int,
        **kwargs,
    ) -> StrategyOutcome:
        """The candidate with the best (lowest) expected final rank."""
        outcomes = self.evaluate(series, origin, horizon, **kwargs)
        if not outcomes:
            raise ValueError("no candidate strategies inside the horizon")
        return min(outcomes, key=lambda o: (o.expected_final_rank, -o.p_gain))
