"""Candidate pit-strategy plans expressed as future race-status covariates.

The paper's conclusion highlights that a probabilistic rank forecaster
"enables racing strategy optimizations": because RankNet conditions on the
future race status, a strategist can ask *what happens to my rank if I pit
in k laps instead of now?* by swapping the planned ``LapStatus`` sequence
and re-running the forecast.  This module builds those counterfactual
covariate plans.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..data.features import CarFeatureSeries
from ..data.schema import ALL_COVARIATES

__all__ = ["build_strategy_plan", "candidate_single_stop_plans"]


def build_strategy_plan(
    series: CarFeatureSeries,
    origin: int,
    horizon: int,
    pit_offsets: Sequence[int],
    assume_caution_free: bool = True,
    shift_lag: int = 2,
) -> np.ndarray:
    """Future covariate plan with pit stops at the given lap offsets.

    Parameters
    ----------
    pit_offsets:
        1-based offsets from ``origin`` at which the car will pit (e.g.
        ``[5]`` means "pit in five laps").  Offsets outside ``1..horizon``
        are ignored.
    assume_caution_free:
        Future ``TrackStatus`` is set to green (the same assumption as
        Algorithm 2 in the paper).

    Returns
    -------
    ``(horizon, len(ALL_COVARIATES))`` covariate matrix.
    """
    if origin < 0 or origin >= len(series):
        raise IndexError(f"origin {origin} out of range")
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    idx = {name: ALL_COVARIATES.index(name) for name in ALL_COVARIATES}
    plan = np.zeros((horizon, len(ALL_COVARIATES)), dtype=np.float64)

    lap_status = np.zeros(horizon)
    for off in pit_offsets:
        off = int(off)
        if 1 <= off <= horizon:
            lap_status[off - 1] = 1.0

    pit_age = float(series.covariate("pit_age")[origin])
    caution_laps = float(series.covariate("caution_laps")[origin])
    age = pit_age
    for h in range(horizon):
        if lap_status[h] > 0.5:
            age = 0.0
        else:
            age += 1.0
        plan[h, idx["lap_status"]] = lap_status[h]
        plan[h, idx["track_status"]] = 0.0 if assume_caution_free else float(
            series.covariate("track_status")[min(origin + 1 + h, len(series) - 1)]
        )
        plan[h, idx["pit_age"]] = age
        plan[h, idx["caution_laps"]] = 0.0 if lap_status[: h + 1].any() else caution_laps
    for h in range(horizon):
        src = h + shift_lag
        if src < horizon:
            plan[h, idx["shift_lap_status"]] = lap_status[src]
    return plan


def candidate_single_stop_plans(
    series: CarFeatureSeries,
    origin: int,
    horizon: int,
    earliest: int = 1,
    latest: int | None = None,
    step: int = 1,
) -> List[dict]:
    """Enumerate "pit in k laps" candidates within the forecast horizon."""
    latest = latest if latest is not None else horizon
    latest = min(latest, horizon)
    candidates: List[dict] = []
    for k in range(max(earliest, 1), latest + 1, max(step, 1)):
        candidates.append(
            {
                "pit_in_laps": k,
                "plan": build_strategy_plan(series, origin, horizon, [k]),
            }
        )
    return candidates
