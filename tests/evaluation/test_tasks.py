"""Tests for the TaskA and TaskB evaluators."""

import numpy as np
import pytest

from repro.data import build_race_features
from repro.evaluation import ShortTermEvaluator, StintEvaluator
from repro.models import CurRankForecaster, ProbabilisticForecast, RankForecaster
from repro.simulation import RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def series_list():
    from dataclasses import replace

    track = replace(track_for_year("Indy500", 2018), total_laps=110, num_cars=14)
    race = RaceSimulator(track, event="Indy500", year=2019, seed=23).run()
    return build_race_features(race)


class OracleForecaster(RankForecaster):
    """Cheating forecaster that returns the true future ranks (for testing)."""

    name = "OracleCheat"
    supports_uncertainty = True

    def fit(self, train_series, val_series=None):
        return self

    def forecast(self, series, origin, horizon, n_samples=100):
        future = series.rank[origin + 1 : origin + 1 + horizon].astype(float)
        if future.size < horizon:
            future = np.concatenate([future, np.full(horizon - future.size, future[-1] if future.size else 1.0)])
        samples = np.tile(future[None, :], (n_samples, 1))
        return ProbabilisticForecast(samples=samples, origin=origin,
                                     race_id=series.race_id, car_id=series.car_id)


def test_taska_oracle_scores_perfectly(series_list):
    evaluator = ShortTermEvaluator(horizon=2, n_samples=5, origin_stride=10)
    result = evaluator.evaluate(OracleForecaster(), series_list)
    assert result.metric("all", "mae") == pytest.approx(0.0, abs=1e-12)
    assert result.metric("all", "top1_acc") == pytest.approx(1.0)
    assert result.metric("all", "risk50") == pytest.approx(0.0, abs=1e-12)
    assert result.metric("all", "risk90") == pytest.approx(0.0, abs=1e-12)


def test_taska_currank_strong_on_normal_weak_on_pit_windows(series_list):
    evaluator = ShortTermEvaluator(horizon=2, n_samples=5, origin_stride=4)
    result = evaluator.evaluate(CurRankForecaster(), series_list)
    assert result.num_windows["all"] > result.num_windows["pit_covered"] > 0
    assert result.metric("normal", "mae") < result.metric("pit_covered", "mae")
    assert result.metric("all", "top1_acc") > 0.5
    # CurRank is deterministic so both risks coincide
    assert result.metric("all", "risk50") == pytest.approx(result.metric("all", "risk90"))


def test_taska_result_row_interface(series_list):
    evaluator = ShortTermEvaluator(horizon=2, n_samples=3, origin_stride=20)
    result = evaluator.evaluate(CurRankForecaster(), series_list[:3])
    row = result.as_row("all")
    assert set(row) == {"top1_acc", "mae", "risk50", "risk90"}


def test_taska_handles_horizon_longer_than_two(series_list):
    evaluator = ShortTermEvaluator(horizon=6, n_samples=3, origin_stride=25)
    result = evaluator.evaluate(CurRankForecaster(), series_list[:4])
    assert result.horizon == 6
    assert np.isfinite(result.metric("all", "mae"))


# ----------------------------------------------------------------------
# TaskB
# ----------------------------------------------------------------------
def test_taskb_oracle_scores_perfectly(series_list):
    evaluator = StintEvaluator(n_samples=5)
    result = evaluator.evaluate(OracleForecaster(), series_list)
    assert result.num_stints > 0
    assert result.metrics["mae"] == pytest.approx(0.0, abs=1e-12)
    assert result.metrics["sign_acc"] == pytest.approx(1.0)


def test_taskb_currank_cannot_predict_changes(series_list):
    evaluator = StintEvaluator(n_samples=5)
    oracle = evaluator.evaluate(OracleForecaster(), series_list)
    currank = evaluator.evaluate(CurRankForecaster(), series_list)
    assert currank.num_stints == oracle.num_stints
    # CurRank predicts zero change everywhere: it only gets the no-change stints right
    assert currank.metrics["sign_acc"] < 0.7
    assert currank.metrics["mae"] > oracle.metrics["mae"]


def test_taskb_stint_tasks_respect_bounds(series_list):
    evaluator = StintEvaluator(min_stint_length=3, max_stint_length=45, min_history=10)
    for series in series_list[:5]:
        for stint in evaluator.stint_tasks(series):
            assert 3 <= stint.length <= 45
            assert stint.start_index - 1 >= 10


def test_taskb_empty_records_give_nan():
    evaluator = StintEvaluator()
    result = evaluator.aggregate([])
    assert result.num_stints == 0
    assert np.isnan(result.metrics["mae"])
