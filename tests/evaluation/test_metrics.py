"""Tests for the evaluation metrics and lap-set classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import build_race_features
from repro.evaluation import (
    LapSet,
    classify_window,
    format_table,
    mae,
    quantile_risk,
    sign_accuracy,
    top1_accuracy,
    windows_by_lapset,
)
from repro.simulation import RaceSimulator, track_for_year


def test_mae_basic_and_validation():
    assert mae(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == pytest.approx(1.0)
    assert np.isnan(mae(np.array([]), np.array([])))
    with pytest.raises(ValueError):
        mae(np.zeros(2), np.zeros(3))


def test_top1_accuracy():
    assert top1_accuracy([1, 2, 3, 4], [1, 2, 3, 5]) == pytest.approx(0.75)
    assert np.isnan(top1_accuracy([], []))
    with pytest.raises(ValueError):
        top1_accuracy([1], [1, 2])


def test_sign_accuracy_treats_small_changes_as_zero():
    pred = np.array([0.2, 3.0, -2.0, 0.0])
    true = np.array([0.0, 5.0, 1.0, 0.0])
    # 0.2 -> sign 0 matches 0; 3 matches +; -2 vs +1 mismatch; 0 matches 0
    assert sign_accuracy(pred, true) == pytest.approx(0.75)


def test_quantile_risk_properties():
    targets = np.array([10.0, 20.0, 30.0])
    # perfect forecasts have zero risk
    assert quantile_risk(targets, targets, 0.5) == pytest.approx(0.0)
    # under-prediction is penalised more for high quantiles
    under = targets - 5.0
    risk_50 = quantile_risk(under, targets, 0.5)
    risk_90 = quantile_risk(under, targets, 0.9)
    assert risk_90 > risk_50 > 0.0
    with pytest.raises(ValueError):
        quantile_risk(targets, targets, 1.5)
    with pytest.raises(ValueError):
        quantile_risk(targets[:2], targets, 0.5)


def test_quantile_risk_matches_manual_computation():
    q = np.array([3.0])
    z = np.array([5.0])
    # z >= q -> indicator 0, loss = 2*(3-5)*(0-0.9) = 3.6, normalised by 5
    assert quantile_risk(q, z, 0.9) == pytest.approx(3.6 / 5.0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=1, max_value=33), min_size=2, max_size=20),
    st.floats(min_value=0.1, max_value=0.9),
)
def test_property_quantile_risk_nonnegative_at_true_quantile(values, rho):
    z = np.array(values)
    # risk of forecasting the true values is zero; any constant shift is >= 0
    assert quantile_risk(z, z, rho) == pytest.approx(0.0)
    assert quantile_risk(z + 1.0, z, rho) >= 0.0
    assert quantile_risk(z - 1.0, z, rho) >= 0.0


def test_format_table_renders_rows():
    rows = [{"model": "CurRank", "mae": 1.16}, {"model": "RankNet", "mae": 0.94}]
    text = format_table(rows, title="Table V")
    assert "Table V" in text
    assert "CurRank" in text and "RankNet" in text
    assert "1.160" in text
    assert format_table([]) == "(empty)"


# ----------------------------------------------------------------------
# lap sets
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def series():
    from dataclasses import replace

    track = replace(track_for_year("Indy500", 2018), total_laps=100, num_cars=12)
    race = RaceSimulator(track, event="Indy500", year=2018, seed=17).run()
    return build_race_features(race)[0]


def test_classify_window_pit_and_normal(series):
    pit_idx = np.where(series.is_pit)[0]
    pit_idx = pit_idx[(pit_idx > 5) & (pit_idx < len(series) - 5)]
    assert pit_idx.size > 0
    assert classify_window(series, int(pit_idx[0]) - 1, 2) is LapSet.PIT_COVERED
    clean = [
        i
        for i in range(5, len(series) - 5)
        if not series.is_pit[i - 1 : i + 3].any() and not series.is_caution[i - 1 : i + 3].any()
    ]
    assert clean
    assert classify_window(series, clean[0], 2) is LapSet.NORMAL


def test_windows_by_lapset_partitions(series):
    origins = list(range(10, len(series) - 3))
    groups = windows_by_lapset(series, origins, horizon=2)
    assert set(groups[LapSet.ALL]) == set(origins)
    assert set(groups[LapSet.NORMAL]).isdisjoint(groups[LapSet.PIT_COVERED])
    assert len(groups[LapSet.NORMAL]) + len(groups[LapSet.PIT_COVERED]) <= len(origins)
    assert len(groups[LapSet.PIT_COVERED]) > 0
