"""Tests for optimizers, schedulers, initializers and the training loop."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    EarlyStopping,
    Module,
    Parameter,
    ReduceLROnPlateau,
    SGD,
    StepDecay,
    Trainer,
    clip_grad_norm,
    mse_loss,
)
from repro.nn import initializers as init


# ----------------------------------------------------------------------
# initializers
# ----------------------------------------------------------------------
def test_orthogonal_initializer_produces_orthonormal_columns():
    w = init.orthogonal((6, 6), rng=0)
    np.testing.assert_allclose(w @ w.T, np.eye(6), atol=1e-10)


def test_orthogonal_rectangular_shapes():
    w = init.orthogonal((8, 4), rng=0)
    np.testing.assert_allclose(w.T @ w, np.eye(4), atol=1e-10)
    w2 = init.orthogonal((4, 8), rng=0)
    np.testing.assert_allclose(w2 @ w2.T, np.eye(4), atol=1e-10)


def test_orthogonal_requires_2d():
    with pytest.raises(ValueError):
        init.orthogonal((5,))


def test_xavier_bounds_and_he_scale():
    w = init.xavier_uniform((100, 200), rng=0)
    limit = np.sqrt(6.0 / 300)
    assert np.all(np.abs(w) <= limit)
    h = init.he_normal((1000, 50), rng=0)
    assert h.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)


def test_lstm_bias_layout():
    b = init.lstm_bias(3, forget_bias=2.0)
    np.testing.assert_allclose(b[3:6], 2.0)
    np.testing.assert_allclose(b[:3], 0.0)
    np.testing.assert_allclose(b[6:], 0.0)


# ----------------------------------------------------------------------
# optimizers
# ----------------------------------------------------------------------
def _quadratic_problem():
    """min ||x - target||^2 with a single parameter vector."""
    target = np.array([1.0, -2.0, 3.0])
    p = Parameter(np.zeros(3), "x")

    def compute_grad():
        p.zero_grad()
        p.grad += 2.0 * (p.data - target)
        return float(np.sum((p.data - target) ** 2))

    return p, target, compute_grad


@pytest.mark.parametrize(
    "make_opt",
    [
        lambda p: SGD([p], lr=0.1),
        lambda p: SGD([p], lr=0.05, momentum=0.9),
        lambda p: Adam([p], lr=0.2),
    ],
)
def test_optimizers_converge_on_quadratic(make_opt):
    p, target, compute_grad = _quadratic_problem()
    opt = make_opt(p)
    for _ in range(200):
        compute_grad()
        opt.step()
    np.testing.assert_allclose(p.data, target, atol=1e-2)


def test_adam_weight_decay_shrinks_weights():
    p = Parameter(np.ones(4) * 10.0)
    opt = Adam([p], lr=0.1, weight_decay=0.5)
    for _ in range(50):
        p.zero_grad()  # zero data gradient, only decay acts
        opt.step()
    assert np.all(np.abs(p.data) < 10.0)


def test_optimizer_rejects_empty_parameter_list():
    with pytest.raises(ValueError):
        Adam([], lr=0.1)


def test_clip_grad_norm_scales_down_but_not_up():
    p = Parameter(np.zeros(4))
    p.grad += np.array([3.0, 4.0, 0.0, 0.0])  # norm 5
    norm = clip_grad_norm([p], max_norm=1.0)
    assert norm == pytest.approx(5.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0)
    p.grad[:] = np.array([0.1, 0.0, 0.0, 0.0])
    clip_grad_norm([p], max_norm=1.0)
    assert np.linalg.norm(p.grad) == pytest.approx(0.1)


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
def test_step_decay_halves_lr_on_schedule():
    p = Parameter(np.zeros(1))
    opt = SGD([p], lr=1.0)
    sched = StepDecay(opt, step_size=2, gamma=0.5)
    lrs = [sched.step() for _ in range(4)]
    assert lrs == [1.0, 0.5, 0.5, 0.25]


def test_reduce_on_plateau_waits_for_patience():
    p = Parameter(np.zeros(1))
    opt = Adam([p], lr=1e-3)
    sched = ReduceLROnPlateau(opt, factor=0.5, patience=2, min_lr=1e-5)
    sched.step(1.0)
    sched.step(0.9)  # improvement
    assert opt.lr == pytest.approx(1e-3)
    sched.step(0.95)
    sched.step(0.95)
    assert opt.lr == pytest.approx(1e-3)  # patience not yet exceeded
    sched.step(0.95)
    assert opt.lr == pytest.approx(5e-4)


def test_reduce_on_plateau_respects_min_lr():
    p = Parameter(np.zeros(1))
    opt = Adam([p], lr=4e-5)
    sched = ReduceLROnPlateau(opt, factor=0.5, patience=0, min_lr=1e-5)
    for _ in range(10):
        sched.step(1.0)
    assert opt.lr == pytest.approx(1e-5)
    assert sched.at_min_lr


def test_early_stopping_triggers_after_patience():
    es = EarlyStopping(patience=3)
    assert not es.step(1.0)
    assert not es.step(0.5)
    assert not es.step(0.6)
    assert not es.step(0.6)
    assert es.step(0.6)  # third bad epoch
    assert es.best == pytest.approx(0.5)
    assert es.best_epoch == 1


# ----------------------------------------------------------------------
# trainer
# ----------------------------------------------------------------------
class TinyRegressor(Module):
    """Minimal TrainableModel fitting y = Wx + b."""

    def __init__(self, rng=0):
        super().__init__()
        self.fc = Dense(2, 1, rng=rng)

    def loss_and_backward(self, batch):
        pred = self.fc.forward(batch["x"])[:, 0]
        loss, grad = mse_loss(pred, batch["y"])
        self.fc.backward(grad[:, None])
        return loss

    def validation_loss(self, batch):
        pred = self.fc.forward(batch["x"])[:, 0]
        self.fc._cache.pop()
        return mse_loss(pred, batch["y"])[0]


def _toy_batches(seed=0, n=128, batch_size=32):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = 3.0 * x[:, 0] - 2.0 * x[:, 1] + 0.5

    def batches():
        for i in range(0, n, batch_size):
            yield {"x": x[i : i + batch_size], "y": y[i : i + batch_size]}

    return batches


def test_trainer_fits_linear_model_and_records_history():
    model = TinyRegressor(rng=0)
    trainer = Trainer(model, lr=0.05, max_epochs=60, early_stopping_patience=60)
    history = trainer.fit(_toy_batches(0), _toy_batches(1))
    assert history.num_epochs > 5
    assert history.val_loss[-1] < 0.05
    assert history.best_val_loss <= min(history.val_loss) + 1e-12
    assert len(history.learning_rate) == history.num_epochs
    np.testing.assert_allclose(model.fc.weight.data[:, 0], [3.0, -2.0], atol=0.1)
    np.testing.assert_allclose(model.fc.bias.data, [0.5], atol=0.1)


def test_trainer_early_stops_on_flat_validation():
    model = TinyRegressor(rng=1)

    def constant_val():
        yield {"x": np.zeros((4, 2)), "y": np.zeros(4)}

    trainer = Trainer(
        model, lr=0.0, max_epochs=50, early_stopping_patience=3, restore_best=False
    )
    history = trainer.fit(_toy_batches(2), constant_val)
    assert history.stopped_early
    assert history.num_epochs <= 6


def test_trainer_restores_best_parameters():
    model = TinyRegressor(rng=2)
    seen_states = []

    def callback(epoch, history):
        seen_states.append(model.state_dict())

    trainer = Trainer(model, lr=0.05, max_epochs=15, callback=callback)
    history = trainer.fit(_toy_batches(3), _toy_batches(4))
    best = history.best_epoch
    np.testing.assert_allclose(
        model.fc.weight.data, seen_states[best]["fc.weight"], rtol=1e-12
    )
