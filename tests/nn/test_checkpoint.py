"""Tests for the npz+meta checkpoint layer and bit-exact Trainer resume."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    EarlyStopping,
    MLP,
    ReduceLROnPlateau,
    SGD,
    Trainer,
    load_checkpoint,
    read_npz,
    restore_rng,
    rng_from_state,
    rng_state,
    save_checkpoint,
    write_npz,
)
from repro.nn.checkpoint import CHECKPOINT_SCHEMA_VERSION


# ----------------------------------------------------------------------
# raw npz + meta IO
# ----------------------------------------------------------------------
def test_write_read_npz_round_trip(tmp_path):
    path = str(tmp_path / "payload.npz")
    arrays = {"a/b": np.arange(6.0).reshape(2, 3), "flags": np.array([True, False])}
    meta = {"name": "x", "nested": {"k": [1, 2, 3]}, "value": 1.5}
    write_npz(path, arrays, meta)
    loaded_arrays, loaded_meta = read_npz(path)
    assert set(loaded_arrays) == {"a/b", "flags"}
    np.testing.assert_array_equal(loaded_arrays["a/b"], arrays["a/b"])
    np.testing.assert_array_equal(loaded_arrays["flags"], arrays["flags"])
    assert loaded_meta == meta


def test_write_npz_uses_exact_path_and_rejects_reserved_key(tmp_path):
    path = str(tmp_path / "no-extension")
    write_npz(path, {"x": np.zeros(2)}, {})
    arrays, _ = read_npz(path)  # no ".npz" appended by numpy
    assert "x" in arrays
    with pytest.raises(ValueError):
        write_npz(str(tmp_path / "bad.npz"), {"__meta__": np.zeros(1)}, {})


# ----------------------------------------------------------------------
# RNG stream round trips
# ----------------------------------------------------------------------
def test_rng_state_round_trip_continues_stream():
    rng = np.random.default_rng(123)
    rng.standard_normal(17)
    state = rng_state(rng)
    expected = rng.standard_normal(8)
    clone = rng_from_state(state)
    np.testing.assert_array_equal(clone.standard_normal(8), expected)


def test_restore_rng_rejects_bit_generator_mismatch():
    rng = np.random.default_rng(0)
    state = dict(rng_state(rng))
    state["bit_generator"] = "MT19937"
    with pytest.raises(ValueError):
        restore_rng(rng, state)


# ----------------------------------------------------------------------
# optimizer / scheduler state round trips
# ----------------------------------------------------------------------
def _quadratic_step(model, optimizer):
    model.zero_grad()
    for p in model.parameters():
        p.grad += p.data  # gradient of 0.5 * ||w||^2
    optimizer.step()


def test_adam_state_round_trip_continues_identically():
    model_a = Dense(4, 3, rng=0)
    model_b = Dense(4, 3, rng=0)
    opt_a = Adam(model_a.parameters(), lr=1e-2)
    opt_b = Adam(model_b.parameters(), lr=1e-2)
    for _ in range(5):
        _quadratic_step(model_a, opt_a)
    # transplant weights + optimizer state, then continue both in lockstep
    model_b.load_state_dict(model_a.state_dict())
    opt_b.load_state_dict(opt_a.state_dict())
    for _ in range(3):
        _quadratic_step(model_a, opt_a)
        _quadratic_step(model_b, opt_b)
    for pa, pb in zip(model_a.parameters(), model_b.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


def test_adam_load_rejects_wrong_slot_count_and_shape():
    model = Dense(4, 3, rng=0)
    opt = Adam(model.parameters(), lr=1e-2)
    _quadratic_step(model, opt)
    state = opt.state_dict()
    bad = {**state, "slots": {"m": state["slots"]["m"][:-1], "v": state["slots"]["v"]}}
    with pytest.raises(ValueError):
        opt.load_state_dict(bad)
    bad_shape = {
        **state,
        "slots": {
            "m": [np.zeros((1, 1)) for _ in state["slots"]["m"]],
            "v": state["slots"]["v"],
        },
    }
    with pytest.raises(ValueError):
        opt.load_state_dict(bad_shape)
    with pytest.raises(KeyError):
        opt.load_state_dict({**state, "slots": {"unknown": state["slots"]["m"]}})


def test_sgd_momentum_state_round_trip():
    model_a = Dense(3, 2, rng=1)
    model_b = Dense(3, 2, rng=1)
    opt_a = SGD(model_a.parameters(), lr=1e-2, momentum=0.9)
    opt_b = SGD(model_b.parameters(), lr=1e-2, momentum=0.9)
    for _ in range(4):
        _quadratic_step(model_a, opt_a)
    model_b.load_state_dict(model_a.state_dict())
    opt_b.load_state_dict(opt_a.state_dict())
    _quadratic_step(model_a, opt_a)
    _quadratic_step(model_b, opt_b)
    for pa, pb in zip(model_a.parameters(), model_b.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


def test_scheduler_and_early_stopping_state_round_trip():
    model = Dense(2, 2, rng=0)
    opt = Adam(model.parameters(), lr=1e-3)
    sched = ReduceLROnPlateau(opt, patience=2)
    stop = EarlyStopping(patience=3)
    for value in (1.0, 0.9, 0.95, 0.96):
        sched.step(value)
        stop.step(value)
    sched2 = ReduceLROnPlateau(Adam(model.parameters(), lr=1e-3), patience=2)
    stop2 = EarlyStopping(patience=3)
    sched2.load_state_dict(sched.state_dict())
    stop2.load_state_dict(stop.state_dict())
    assert sched2.best == sched.best
    assert sched2.num_bad_epochs == sched.num_bad_epochs
    assert stop2.state_dict() == stop.state_dict()


# ----------------------------------------------------------------------
# full checkpoints
# ----------------------------------------------------------------------
def test_save_load_checkpoint_restores_all_components(tmp_path):
    path = str(tmp_path / "ckpt.npz")
    model = MLP(3, [4], 2, rng=0)
    opt = Adam(model.parameters(), lr=5e-3)
    sched = ReduceLROnPlateau(opt, patience=1)
    stop = EarlyStopping(patience=2)
    rng = np.random.default_rng(9)
    _quadratic_step(model, opt)
    sched.step(0.5)
    stop.step(0.5)
    rng.standard_normal(5)
    expected_draw = rng_from_state(rng_state(rng)).standard_normal(4)
    save_checkpoint(
        path, model=model, optimizer=opt, scheduler=sched, early_stopping=stop,
        rng=rng, extra_arrays={"history": np.arange(3.0)}, meta={"epoch": 7},
    )

    model2 = MLP(3, [4], 2, rng=1)
    opt2 = Adam(model2.parameters(), lr=1e-3)
    sched2 = ReduceLROnPlateau(opt2, patience=1)
    stop2 = EarlyStopping(patience=2)
    rng2 = np.random.default_rng(0)
    result = load_checkpoint(
        path, model=model2, optimizer=opt2, scheduler=sched2,
        early_stopping=stop2, rng=rng2,
    )
    for (na, pa), (nb, pb) in zip(model.named_parameters(), model2.named_parameters()):
        assert na == nb
        np.testing.assert_array_equal(pa.data, pb.data)
    assert opt2.lr == opt.lr and opt2._t == opt._t
    assert sched2.state_dict() == sched.state_dict()
    assert stop2.state_dict() == stop.state_dict()
    np.testing.assert_array_equal(rng2.standard_normal(4), expected_draw)
    assert result["meta"] == {"epoch": 7}
    np.testing.assert_array_equal(result["arrays"]["history"], np.arange(3.0))


def test_load_checkpoint_errors_on_missing_components_and_new_schema(tmp_path):
    path = str(tmp_path / "partial.npz")
    save_checkpoint(path, rng=np.random.default_rng(0))
    model = Dense(2, 2, rng=0)
    with pytest.raises(ValueError, match="no model state"):
        load_checkpoint(path, model=model)
    with pytest.raises(ValueError, match="no optimizer state"):
        load_checkpoint(path, optimizer=Adam(model.parameters(), lr=1e-3))
    newer = str(tmp_path / "newer.npz")
    write_npz(newer, {}, {"schema_version": CHECKPOINT_SCHEMA_VERSION + 1})
    with pytest.raises(ValueError, match="schema version"):
        load_checkpoint(newer)


# ----------------------------------------------------------------------
# Trainer resume
# ----------------------------------------------------------------------
class _Regression(Dense):
    """Dense layer with the Trainer's loss protocol bolted on."""

    def loss_and_backward(self, batch):
        pred = self.forward(batch["x"])[:, 0]
        err = pred - batch["y"]
        self.backward((2.0 * err / err.size)[:, None])
        return float(np.mean(err**2))

    def validation_loss(self, batch):
        pred = self.forward(batch["x"])[:, 0]
        self.clear_cache()
        return float(np.mean((pred - batch["y"]) ** 2))


def _make_problem():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((48, 3))
    y = X @ np.array([1.0, -2.0, 0.5])
    return X, y


def _run_training(max_epochs, checkpoint_dir=None, resume=False):
    X, y = _make_problem()
    model = _Regression(3, 1, rng=0)
    loader_rng = np.random.default_rng(42)

    def batches():
        order = loader_rng.permutation(X.shape[0])
        for start in range(0, X.shape[0], 16):
            rows = order[start : start + 16]
            yield {"x": X[rows], "y": y[rows]}

    trainer = Trainer(
        model,
        optimizer=Adam(model.parameters(), lr=1e-2),
        max_epochs=max_epochs,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        checkpoint_rng=loader_rng,
    )
    history = trainer.fit(batches, batches)
    return model, history


def test_trainer_resume_is_bit_exact(tmp_path):
    model_full, history_full = _run_training(8)
    ckpt = str(tmp_path / "ckpt")
    _run_training(4, checkpoint_dir=ckpt)  # interrupted run
    model_resumed, history_resumed = _run_training(8, checkpoint_dir=ckpt, resume=True)
    for pa, pb in zip(model_full.parameters(), model_resumed.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)
    assert history_full.train_loss == history_resumed.train_loss
    assert history_full.val_loss == history_resumed.val_loss
    assert history_full.best_epoch == history_resumed.best_epoch


def test_trainer_resume_with_no_checkpoint_starts_fresh(tmp_path):
    ckpt = str(tmp_path / "empty")
    model, history = _run_training(3, checkpoint_dir=ckpt, resume=True)
    assert history.num_epochs == 3


def test_trainer_resume_requires_checkpoint_dir():
    model = _Regression(3, 1, rng=0)
    with pytest.raises(ValueError):
        Trainer(model, optimizer=Adam(model.parameters(), lr=1e-2), resume=True)
