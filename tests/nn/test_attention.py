"""Gradient checks and behaviour tests for attention / Transformer blocks."""

import numpy as np
import pytest

from repro.nn import (
    MultiHeadAttention,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    causal_mask,
    sinusoidal_positional_encoding,
)
from repro.nn.gradcheck import numerical_gradient, relative_error

TOL = 1e-4


def test_positional_encoding_shape_and_range():
    pe = sinusoidal_positional_encoding(50, 16)
    assert pe.shape == (50, 16)
    assert np.all(np.abs(pe) <= 1.0 + 1e-12)
    # distinct positions get distinct encodings
    assert not np.allclose(pe[0], pe[1])


def test_positional_encoding_odd_dimension():
    pe = sinusoidal_positional_encoding(10, 7)
    assert pe.shape == (10, 7)
    assert np.all(np.isfinite(pe))


def test_causal_mask_blocks_future_positions():
    mask = causal_mask(4)
    assert mask.shape == (4, 4)
    assert np.all(mask[np.triu_indices(4, k=1)] < -1e8)
    assert np.all(mask[np.tril_indices(4)] == 0.0)


def test_mha_rejects_indivisible_heads():
    with pytest.raises(ValueError):
        MultiHeadAttention(d_model=10, num_heads=3)


def test_mha_output_shape_and_mask_effect():
    rng = np.random.default_rng(0)
    mha = MultiHeadAttention(8, 2, rng=rng)
    x = rng.normal(size=(2, 5, 8))
    out = mha.forward(x, x, x)
    assert out.shape == (2, 5, 8)
    mha.clear_cache()
    out_masked = mha.forward(x, x, x, mask=causal_mask(5))
    # first position can only attend to itself -> outputs differ from unmasked
    assert not np.allclose(out, out_masked)


def test_mha_causal_mask_makes_first_step_independent_of_future():
    rng = np.random.default_rng(1)
    mha = MultiHeadAttention(8, 2, rng=rng)
    x = rng.normal(size=(1, 4, 8))
    out1 = mha.forward(x, x, x, mask=causal_mask(4))
    mha.clear_cache()
    x2 = x.copy()
    x2[:, 2:, :] += 10.0  # perturb the future
    out2 = mha.forward(x2, x2, x2, mask=causal_mask(4))
    np.testing.assert_allclose(out1[:, 0, :], out2[:, 0, :], rtol=1e-10)
    assert not np.allclose(out1[:, 3, :], out2[:, 3, :])


def test_mha_input_gradients_match_numeric():
    rng = np.random.default_rng(2)
    mha = MultiHeadAttention(4, 2, rng=rng)
    q = rng.normal(size=(1, 3, 4))
    kv = rng.normal(size=(1, 4, 4))
    w = rng.normal(size=(1, 3, 4))

    out = mha.forward(q, kv, kv)
    dq, dk, dv = mha.backward(w)

    def loss_q():
        y = mha.forward(q, kv, kv)
        mha.clear_cache()
        return float(np.sum(w * y))

    num_q = numerical_gradient(loss_q, q)
    assert relative_error(dq, num_q) < TOL
    num_kv = numerical_gradient(loss_q, kv)
    assert relative_error(dk + dv, num_kv) < TOL


def test_mha_parameter_gradient_matches_numeric():
    rng = np.random.default_rng(3)
    mha = MultiHeadAttention(4, 2, rng=rng)
    x = rng.normal(size=(1, 3, 4))
    w = rng.normal(size=(1, 3, 4))
    mha.forward(x, x, x)
    mha.zero_grad()
    mha.clear_cache()
    mha.forward(x, x, x)
    mha.backward(w)
    param = mha.q_proj.weight
    analytic = param.grad.copy()

    def loss():
        y = mha.forward(x, x, x)
        mha.clear_cache()
        return float(np.sum(w * y))

    numeric = numerical_gradient(loss, param.data)
    assert relative_error(analytic, numeric) < TOL


def test_encoder_layer_shapes_and_gradient():
    rng = np.random.default_rng(4)
    enc = TransformerEncoderLayer(8, 2, 16, rng=rng)
    enc.eval()
    x = rng.normal(size=(2, 4, 8))
    w = rng.normal(size=(2, 4, 8))
    out = enc.forward(x)
    assert out.shape == x.shape
    analytic = enc.backward(w)

    def clear(module):
        for attr in vars(module).values():
            if hasattr(attr, "clear_cache"):
                attr.clear_cache()
            if hasattr(attr, "_cache") and isinstance(getattr(attr, "_cache"), list):
                attr._cache.clear()

    def loss():
        y = enc.forward(x)
        clear(enc)
        clear(enc.ffn)
        enc.self_attn.clear_cache()
        return float(np.sum(w * y))

    numeric = numerical_gradient(loss, x)
    assert relative_error(analytic, numeric) < 5e-4


def test_decoder_layer_returns_memory_gradient():
    rng = np.random.default_rng(5)
    dec = TransformerDecoderLayer(8, 2, 16, rng=rng)
    dec.eval()
    x = rng.normal(size=(2, 3, 8))
    mem = rng.normal(size=(2, 5, 8))
    out = dec.forward(x, mem, self_mask=causal_mask(3))
    assert out.shape == x.shape
    dx, dmem = dec.backward(rng.normal(size=out.shape))
    assert dx.shape == x.shape
    assert dmem.shape == mem.shape
    assert not np.allclose(dmem, 0.0)


def test_decoder_causal_mask_respects_order():
    rng = np.random.default_rng(6)
    dec = TransformerDecoderLayer(8, 2, 16, rng=rng)
    dec.eval()
    x = rng.normal(size=(1, 4, 8))
    mem = rng.normal(size=(1, 5, 8))
    out1 = dec.forward(x, mem, self_mask=causal_mask(4))
    x2 = x.copy()
    x2[:, -1, :] += 5.0
    out2 = dec.forward(x2, mem, self_mask=causal_mask(4))
    np.testing.assert_allclose(out1[:, 0, :], out2[:, 0, :], rtol=1e-10)
