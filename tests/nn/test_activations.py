"""Tests for activation functions and their derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import activations as act


def test_sigmoid_matches_closed_form_and_is_stable():
    x = np.array([-1000.0, -5.0, 0.0, 5.0, 1000.0])
    y = act.sigmoid(x)
    assert np.all(np.isfinite(y))
    assert y[0] == pytest.approx(0.0, abs=1e-12)
    assert y[2] == pytest.approx(0.5)
    assert y[-1] == pytest.approx(1.0, abs=1e-12)
    np.testing.assert_allclose(act.sigmoid(np.array([1.0])), 1 / (1 + np.exp(-1)), rtol=1e-12)


def test_softplus_stable_for_large_inputs():
    x = np.array([-800.0, 0.0, 800.0])
    y = act.softplus(x)
    assert np.all(np.isfinite(y))
    assert y[1] == pytest.approx(np.log(2.0))
    assert y[2] == pytest.approx(800.0)


def test_softmax_rows_sum_to_one_and_shift_invariant():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 7)) * 10
    p = act.softmax(x, axis=-1)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-12)
    np.testing.assert_allclose(act.softmax(x + 100.0, axis=-1), p, rtol=1e-9)


def test_log_softmax_consistent_with_softmax():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 5))
    np.testing.assert_allclose(np.exp(act.log_softmax(x)), act.softmax(x), rtol=1e-12)


@pytest.mark.parametrize("name", ["sigmoid", "tanh", "relu", "leaky_relu", "softplus", "identity"])
def test_activation_gradients_match_finite_differences(name):
    a = act.get_activation(name)
    rng = np.random.default_rng(2)
    x = rng.normal(size=(50,))
    # keep away from the ReLU kink where the derivative is not defined
    x[np.abs(x) < 1e-3] = 0.5
    y = a(x)
    analytic = a.grad(x, y)
    eps = 1e-6
    numeric = (a.fn(x + eps) - a.fn(x - eps)) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)


def test_get_activation_unknown_name_raises():
    with pytest.raises(ValueError):
        act.get_activation("swishish")


def test_get_activation_none_is_identity():
    a = act.get_activation(None)
    x = np.array([1.0, -2.0])
    np.testing.assert_array_equal(a(x), x)


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=-50, max_value=50))
def test_sigmoid_tanh_relationship(x):
    # tanh(x) = 2*sigmoid(2x) - 1
    lhs = act.tanh(np.array([x]))[0]
    rhs = 2.0 * act.sigmoid(np.array([2.0 * x]))[0] - 1.0
    assert lhs == pytest.approx(rhs, abs=1e-10)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-20, max_value=20), min_size=2, max_size=8))
def test_softmax_is_monotone_in_inputs(values):
    x = np.array(values)
    p = act.softmax(x)
    order_x = np.argsort(x)
    order_p = np.argsort(p)
    np.testing.assert_array_equal(np.sort(x[order_x]), x[order_x])
    # softmax preserves ordering
    assert np.all(np.diff(p[order_x]) >= -1e-12)
    assert p.min() >= 0.0 and p.max() <= 1.0
