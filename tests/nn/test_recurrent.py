"""Gradient checks and behaviour tests for the LSTM layers."""

import numpy as np
import pytest

from repro.nn import LSTMCell, StackedLSTM
from repro.nn.gradcheck import numerical_gradient, relative_error

TOL = 1e-4


def _cell_loss(cell, x, weights):
    out, _ = cell.forward(x)
    cell.clear_cache()
    return float(np.sum(weights * out))


def test_lstm_cell_step_shapes_and_state_update():
    cell = LSTMCell(3, 5, rng=0)
    x = np.random.default_rng(0).normal(size=(4, 3))
    h, (h2, c) = cell.step(x, cell.zero_state(4))
    assert h.shape == (4, 5)
    assert np.shares_memory(h, h2) or np.array_equal(h, h2)
    assert c.shape == (4, 5)
    assert not np.allclose(h, 0.0)


def test_lstm_cell_sequence_input_gradient():
    rng = np.random.default_rng(1)
    cell = LSTMCell(3, 4, rng=rng)
    x = rng.normal(size=(2, 5, 3))
    w = rng.normal(size=(2, 5, 4))
    out, _ = cell.forward(x)
    analytic = cell.backward(w)
    numeric = numerical_gradient(lambda: _cell_loss(cell, x, w), x)
    assert relative_error(analytic, numeric) < TOL


@pytest.mark.parametrize("param_name", ["w_x", "w_h", "bias"])
def test_lstm_cell_parameter_gradients(param_name):
    rng = np.random.default_rng(2)
    cell = LSTMCell(2, 3, rng=rng)
    x = rng.normal(size=(2, 4, 2))
    w = rng.normal(size=(2, 4, 3))
    cell.forward(x)
    cell.zero_grad()
    cell.clear_cache()
    cell.forward(x)
    cell.backward(w)
    param = getattr(cell, param_name)
    analytic = param.grad.copy()
    numeric = numerical_gradient(lambda: _cell_loss(cell, x, w), param.data)
    assert relative_error(analytic, numeric) < TOL


def test_lstm_forget_gate_bias_initialised_to_one():
    cell = LSTMCell(2, 4, forget_bias=1.0, rng=0)
    np.testing.assert_allclose(cell.bias.data[4:8], 1.0)
    np.testing.assert_allclose(cell.bias.data[:4], 0.0)


def test_lstm_cell_step_backward_without_step_raises():
    cell = LSTMCell(2, 2, rng=0)
    with pytest.raises(RuntimeError):
        cell.step_backward(np.zeros((1, 2)))


def test_stacked_lstm_forward_shapes():
    rng = np.random.default_rng(3)
    net = StackedLSTM(input_dim=4, hidden_dim=6, num_layers=3, rng=rng)
    x = rng.normal(size=(5, 7, 4))
    out, states = net.forward(x)
    assert out.shape == (5, 7, 6)
    assert len(states) == 3
    for h, c in states:
        assert h.shape == (5, 6) and c.shape == (5, 6)


def test_stacked_lstm_input_gradient():
    rng = np.random.default_rng(4)
    net = StackedLSTM(input_dim=3, hidden_dim=4, num_layers=2, rng=rng)
    x = rng.normal(size=(2, 4, 3))
    w = rng.normal(size=(2, 4, 4))
    out, _ = net.forward(x)
    analytic = net.backward(w)

    def loss():
        out, _ = net.forward(x)
        net.clear_cache()
        return float(np.sum(w * out))

    numeric = numerical_gradient(loss, x)
    assert relative_error(analytic, numeric) < TOL


def test_stacked_lstm_parameter_gradient_second_layer():
    rng = np.random.default_rng(5)
    net = StackedLSTM(input_dim=2, hidden_dim=3, num_layers=2, rng=rng)
    x = rng.normal(size=(2, 3, 2))
    w = rng.normal(size=(2, 3, 3))
    net.forward(x)
    net.zero_grad()
    net.clear_cache()
    net.forward(x)
    net.backward(w)
    param = net.cells[1].w_h
    analytic = param.grad.copy()

    def loss():
        out, _ = net.forward(x)
        net.clear_cache()
        return float(np.sum(w * out))

    numeric = numerical_gradient(loss, param.data)
    assert relative_error(analytic, numeric) < TOL


def test_stacked_lstm_step_api_matches_forward():
    rng = np.random.default_rng(6)
    net = StackedLSTM(input_dim=3, hidden_dim=4, num_layers=2, rng=rng)
    x = rng.normal(size=(2, 5, 3))
    out_full, states_full = net.forward(x)
    net.clear_cache()
    states = net.zero_state(2)
    outs = []
    for t in range(5):
        h, states = net.step(x[:, t, :], states)
        outs.append(h)
    np.testing.assert_allclose(np.stack(outs, axis=1), out_full, rtol=1e-12)
    for (h1, c1), (h2, c2) in zip(states, states_full):
        np.testing.assert_allclose(h1, h2)
        np.testing.assert_allclose(c1, c2)


def test_stacked_lstm_state_carries_information_across_calls():
    """Feeding a sequence in two halves with carried state equals one pass."""
    rng = np.random.default_rng(7)
    net = StackedLSTM(input_dim=2, hidden_dim=3, num_layers=2, rng=rng)
    x = rng.normal(size=(1, 6, 2))
    full, _ = net.forward(x)
    net.clear_cache()
    first, states = net.forward(x[:, :3, :])
    second, _ = net.forward(x[:, 3:, :], states)
    np.testing.assert_allclose(np.concatenate([first, second], axis=1), full, rtol=1e-12)


def test_stacked_lstm_invalid_num_layers():
    with pytest.raises(ValueError):
        StackedLSTM(2, 3, num_layers=0)


def test_stacked_lstm_wrong_state_count_raises():
    net = StackedLSTM(2, 3, num_layers=2, rng=0)
    with pytest.raises(ValueError):
        net.step(np.zeros((1, 2)), [net.cells[0].zero_state(1)])


def test_stacked_lstm_dropout_only_between_layers_in_training():
    rng = np.random.default_rng(8)
    net = StackedLSTM(input_dim=2, hidden_dim=16, num_layers=2, dropout=0.5, rng=rng)
    x = rng.normal(size=(4, 3, 2))
    net.train(True)
    out_train, _ = net.forward(x)
    net.clear_cache()
    net.eval()
    out_eval1, _ = net.forward(x)
    net.clear_cache()
    out_eval2, _ = net.forward(x)
    # eval is deterministic, train differs from eval due to dropout
    np.testing.assert_allclose(out_eval1, out_eval2)
    assert not np.allclose(out_train, out_eval1)
