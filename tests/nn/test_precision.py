"""The dtype-policy choke point: tiers, quantisation, module conversion."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.precision import (
    DEFAULT_PRECISION,
    PRECISIONS,
    assert_dtype,
    compute_dtype,
    convert_array,
    convert_module,
    dequantize_int8,
    normalize_precision,
    quantize_int8,
    working_array,
    working_empty,
    working_zeros,
)
from repro.nn.recurrent import StackedLSTM


# ----------------------------------------------------------------------
# tier names and dtype mapping
# ----------------------------------------------------------------------
def test_tier_registry():
    assert PRECISIONS == ("float64", "float32", "int8")
    assert DEFAULT_PRECISION == "float64"


def test_normalize_precision():
    assert normalize_precision(None) == "float64"
    assert normalize_precision(None, default="float32") == "float32"
    for tier in PRECISIONS:
        assert normalize_precision(tier) == tier
    with pytest.raises(ValueError, match="unknown precision 'float16'"):
        normalize_precision("float16")


def test_compute_dtype_int8_runs_in_float32():
    assert compute_dtype("float64") == np.float64
    assert compute_dtype("float32") == np.float32
    assert compute_dtype("int8") == np.float32


def test_working_helpers_and_assert_guard():
    x = [[1.0, 2.0], [3.0, 4.0]]
    assert working_array(x, dtype=np.float32).dtype == np.float32
    assert working_array(x, dtype=np.float32, contiguous=True).flags["C_CONTIGUOUS"]
    assert working_empty((2, 3), dtype=np.float32).shape == (2, 3)
    z = working_zeros((4,), dtype=np.float32)
    assert z.dtype == np.float32 and not z.any()
    assert_dtype(z, np.float32, "buffer")
    with pytest.raises(AssertionError, match="silently changed dtype"):
        assert_dtype(z.astype(np.float64), np.float32, "buffer")


# ----------------------------------------------------------------------
# int8 quantisation properties
# ----------------------------------------------------------------------
def test_quantize_int8_per_output_channel():
    rng = np.random.default_rng(0)
    w = rng.normal(size=(16, 6)) * np.array([1.0, 0.1, 10.0, 1e-4, 3.0, 2.0])
    q, scale = quantize_int8(w)
    assert q.dtype == np.int8 and scale.dtype == np.float32
    assert q.shape == w.shape and scale.shape == (6,)
    # symmetric: the -128 code is never used
    assert q.min() >= -127
    # each column's max code hits full range (its absmax maps to ±127)
    assert (np.abs(q).max(axis=0) == 127).all()
    # reconstruction error bounded by half a quantisation step per channel
    err = np.abs(dequantize_int8(q, scale).astype(np.float64) - w)
    assert (err <= 0.5 * scale.astype(np.float64) + 1e-12).all()


def test_quantize_int8_zero_column_and_vectors():
    w = np.zeros((4, 2))
    w[:, 1] = [1.0, -2.0, 0.5, 2.0]
    q, scale = quantize_int8(w)
    assert scale[0] == 1.0 and (q[:, 0] == 0).all()
    v = np.array([0.0, 3.0, -1.5])
    qv, sv = quantize_int8(v)
    # 1-D quantises per element: every nonzero entry inverts exactly
    assert np.allclose(dequantize_int8(qv, sv), v, atol=1e-6)


def test_convert_array_tiers():
    w = np.random.default_rng(1).normal(size=(8, 3))
    assert convert_array(w, "float64") is w  # reference tier: no copy
    assert convert_array(w, "float64").dtype == np.float64
    f32 = convert_array(w, "float32")
    assert f32.dtype == np.float32
    np.testing.assert_array_equal(f32, w.astype(np.float32))
    i8 = convert_array(w, "int8")
    assert i8.dtype == np.float32
    assert np.abs(i8.astype(np.float64) - w).max() <= np.abs(w).max() / 127.0


# ----------------------------------------------------------------------
# module conversion
# ----------------------------------------------------------------------
def test_convert_module_float64_is_identity():
    stack = StackedLSTM(input_dim=4, hidden_dim=6, num_layers=1, rng=0)
    assert convert_module(stack, "float64") is stack


@pytest.mark.parametrize("precision", ["float32", "int8"])
def test_convert_module_low_tiers_leave_original_untouched(precision):
    stack = StackedLSTM(input_dim=4, hidden_dim=6, num_layers=1, rng=0)
    before = {name: p.data.copy() for name, p in stack.named_parameters()}
    replica = convert_module(stack, precision)
    assert replica is not stack
    for name, param in stack.named_parameters():
        assert param.data.dtype == np.float64
        np.testing.assert_array_equal(param.data, before[name])
    for name, param in replica.named_parameters():
        assert param.data.dtype == np.float32
        assert isinstance(param, Parameter)
        np.testing.assert_array_equal(
            param.data, convert_array(before[name], precision)
        )
