"""Tests for the GRU backbone and the Student-t likelihood head."""

import numpy as np
import pytest

from repro.nn import GRUCell, StackedGRU, StudentTOutput, student_t_nll
from repro.nn.gradcheck import numerical_gradient, relative_error

TOL = 1e-4


# ----------------------------------------------------------------------
# GRU
# ----------------------------------------------------------------------
def test_gru_cell_step_shapes():
    cell = GRUCell(3, 5, rng=0)
    x = np.random.default_rng(0).normal(size=(4, 3))
    h = cell.step(x, cell.zero_state(4))
    assert h.shape == (4, 5)
    assert not np.allclose(h, 0.0)


def test_gru_cell_sequence_input_gradient():
    rng = np.random.default_rng(1)
    cell = GRUCell(3, 4, rng=rng)
    x = rng.normal(size=(2, 5, 3))
    w = rng.normal(size=(2, 5, 4))
    out, _ = cell.forward(x)
    analytic = cell.backward(w)

    def loss():
        y, _ = cell.forward(x)
        cell.clear_cache()
        return float(np.sum(w * y))

    numeric = numerical_gradient(loss, x)
    assert relative_error(analytic, numeric) < TOL


@pytest.mark.parametrize("param_name", ["w_x_gates", "w_h_gates", "w_x_cand", "w_h_cand", "b_cand"])
def test_gru_cell_parameter_gradients(param_name):
    rng = np.random.default_rng(2)
    cell = GRUCell(2, 3, rng=rng)
    x = rng.normal(size=(2, 4, 2))
    w = rng.normal(size=(2, 4, 3))
    cell.forward(x)
    cell.zero_grad()
    cell.clear_cache()
    cell.forward(x)
    cell.backward(w)
    param = getattr(cell, param_name)
    analytic = param.grad.copy()

    def loss():
        y, _ = cell.forward(x)
        cell.clear_cache()
        return float(np.sum(w * y))

    numeric = numerical_gradient(loss, param.data)
    assert relative_error(analytic, numeric) < TOL


def test_stacked_gru_forward_backward_shapes():
    rng = np.random.default_rng(3)
    net = StackedGRU(input_dim=4, hidden_dim=6, num_layers=2, rng=rng)
    x = rng.normal(size=(3, 7, 4))
    out, states = net.forward(x)
    assert out.shape == (3, 7, 6)
    assert len(states) == 2
    dx = net.backward(np.ones_like(out))
    assert dx.shape == x.shape


def test_stacked_gru_input_gradient():
    rng = np.random.default_rng(4)
    net = StackedGRU(input_dim=3, hidden_dim=4, num_layers=2, rng=rng)
    x = rng.normal(size=(2, 4, 3))
    w = rng.normal(size=(2, 4, 4))
    out, _ = net.forward(x)
    analytic = net.backward(w)

    def loss():
        y, _ = net.forward(x)
        net.clear_cache()
        return float(np.sum(w * y))

    numeric = numerical_gradient(loss, x)
    assert relative_error(analytic, numeric) < TOL


def test_stacked_gru_step_matches_forward():
    rng = np.random.default_rng(5)
    net = StackedGRU(input_dim=3, hidden_dim=4, num_layers=2, rng=rng)
    x = rng.normal(size=(2, 5, 3))
    full, _ = net.forward(x)
    net.clear_cache()
    states = net.zero_state(2)
    outs = []
    for t in range(5):
        h, states = net.step(x[:, t, :], states)
        outs.append(h)
    np.testing.assert_allclose(np.stack(outs, axis=1), full, rtol=1e-12)


def test_stacked_gru_validation():
    with pytest.raises(ValueError):
        StackedGRU(2, 3, num_layers=0)
    net = StackedGRU(2, 3, num_layers=2, rng=0)
    with pytest.raises(ValueError):
        net.step(np.zeros((1, 2)), [net.cells[0].zero_state(1)])
    with pytest.raises(RuntimeError):
        net.cells[0].step_backward(np.zeros((1, 3)))


def test_gru_has_fewer_parameters_than_lstm():
    from repro.nn import StackedLSTM

    gru = StackedGRU(input_dim=10, hidden_dim=40, num_layers=2, rng=0)
    lstm = StackedLSTM(input_dim=10, hidden_dim=40, num_layers=2, rng=0)
    assert gru.num_parameters() < lstm.num_parameters()


# ----------------------------------------------------------------------
# Student-t output
# ----------------------------------------------------------------------
def test_student_t_output_parameter_ranges():
    rng = np.random.default_rng(6)
    head = StudentTOutput(8, rng=rng)
    params = head.forward(rng.normal(size=(50, 8)) * 5)
    assert np.all(params.sigma > 0)
    assert np.all(params.nu > 2.0)
    assert params.mu.shape == (50,)


def test_student_t_nll_gradients_match_numeric():
    rng = np.random.default_rng(7)
    z = rng.normal(size=6)
    mu = rng.normal(size=6)
    sigma = np.abs(rng.normal(size=6)) + 0.5
    nu = np.abs(rng.normal(size=6)) + 3.0
    _, d_mu, d_sigma, d_nu = student_t_nll(z, mu, sigma, nu)
    for arr, grad in ((mu, d_mu), (sigma, d_sigma), (nu, d_nu)):
        numeric = numerical_gradient(lambda: student_t_nll(z, mu, sigma, nu)[0], arr)
        assert relative_error(grad, numeric) < 1e-4


def test_student_t_approaches_gaussian_for_large_nu():
    from repro.nn.losses import gaussian_nll

    z = np.array([0.3, -1.2, 2.0])
    mu = np.zeros(3)
    sigma = np.ones(3)
    t_loss, *_ = student_t_nll(z, mu, sigma, np.full(3, 1e6))
    g_loss, *_ = gaussian_nll(z, mu, sigma)
    assert t_loss == pytest.approx(g_loss, rel=1e-3)


def test_student_t_sampling_and_quantiles():
    rng = np.random.default_rng(8)
    head = StudentTOutput(4, rng=rng)
    params = head.forward(rng.normal(size=(3, 4)))
    samples = params.sample(rng, n_samples=5000)
    assert samples.shape == (5000, 3)
    np.testing.assert_allclose(np.median(samples, axis=0), params.mu, atol=0.2)
    np.testing.assert_allclose(params.quantile(0.5), params.mu, atol=1e-9)
    assert np.all(params.quantile(0.9) > params.quantile(0.1))


def test_student_t_backward_through_nll():
    rng = np.random.default_rng(9)
    head = StudentTOutput(5, rng=rng)
    h = rng.normal(size=(4, 5))
    z = rng.normal(size=4)
    params = head.forward(h)
    loss, d_mu, d_sigma, d_nu = student_t_nll(z, params.mu, params.sigma, params.nu)
    dh = head.backward(d_mu, d_sigma, d_nu)
    assert dh.shape == h.shape

    def loss_fn():
        p = head.forward(h)
        head.clear_cache()
        return student_t_nll(z, p.mu, p.sigma, p.nu)[0]

    numeric = numerical_gradient(loss_fn, h)
    assert relative_error(dh, numeric) < 1e-4
