"""Gradient checks and behaviour tests for feed-forward layers."""

import numpy as np
import pytest

from repro.nn import Dense, Dropout, Embedding, LayerNorm, MLP, Sequential
from repro.nn.gradcheck import numerical_gradient, relative_error

RNG = np.random.default_rng(1234)
TOL = 1e-5


def _check_input_grad(layer, x, loss_weights=None):
    """Numerically verify the layer's input gradient for loss = sum(w * out)."""
    out = layer.forward(x)
    w = loss_weights if loss_weights is not None else np.ones_like(out)
    analytic = layer.backward(w)

    def loss():
        return float(np.sum(w * layer_forward_nocache(layer, x)))

    numeric = numerical_gradient(loss, x)
    assert relative_error(analytic, numeric) < 1e-4


def layer_forward_nocache(layer, x):
    y = layer.forward(x)
    # pop the cache entry we just created so caches do not grow
    if hasattr(layer, "_cache") and layer._cache:
        layer._cache.pop()
    return y


@pytest.mark.parametrize("activation", [None, "tanh", "relu", "sigmoid", "softplus"])
def test_dense_input_gradient(activation):
    layer = Dense(5, 4, activation=activation, rng=RNG)
    x = RNG.normal(size=(3, 5))
    x[np.abs(x) < 1e-3] = 0.3
    _check_input_grad(layer, x)


def test_dense_parameter_gradients():
    layer = Dense(4, 3, activation="tanh", rng=RNG)
    x = RNG.normal(size=(6, 4))
    w = RNG.normal(size=(6, 3))

    out = layer.forward(x)
    layer.backward(w)
    analytic_w = layer.weight.grad.copy()
    analytic_b = layer.bias.grad.copy()

    def loss():
        return float(np.sum(w * layer_forward_nocache(layer, x)))

    num_w = numerical_gradient(loss, layer.weight.data)
    num_b = numerical_gradient(loss, layer.bias.data)
    assert relative_error(analytic_w, num_w) < TOL
    assert relative_error(analytic_b, num_b) < TOL


def test_dense_handles_3d_inputs():
    layer = Dense(4, 2, rng=RNG)
    x = RNG.normal(size=(2, 7, 4))
    out = layer.forward(x)
    assert out.shape == (2, 7, 2)
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_dense_rejects_wrong_input_dim():
    layer = Dense(4, 2, rng=RNG)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((3, 5)))


def test_dense_backward_without_forward_raises():
    layer = Dense(2, 2, rng=RNG)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 2)))


def test_dense_reuse_accumulates_multiple_caches():
    layer = Dense(3, 3, rng=RNG)
    x1, x2 = RNG.normal(size=(2, 3)), RNG.normal(size=(2, 3))
    layer.forward(x1)
    layer.forward(x2)
    layer.backward(np.ones((2, 3)))  # corresponds to x2
    g1 = layer.backward(np.ones((2, 3)))  # corresponds to x1
    assert g1.shape == x1.shape
    assert len(layer._cache) == 0


def test_embedding_lookup_and_gradient_accumulation():
    emb = Embedding(10, 4, rng=RNG)
    ids = np.array([1, 3, 3, 7])
    out = emb.forward(ids)
    assert out.shape == (4, 4)
    np.testing.assert_allclose(out[1], out[2])
    emb.backward(np.ones((4, 4)))
    # id 3 appears twice -> gradient accumulated twice
    np.testing.assert_allclose(emb.weight.grad[3], 2.0)
    np.testing.assert_allclose(emb.weight.grad[1], 1.0)
    np.testing.assert_allclose(emb.weight.grad[0], 0.0)


def test_embedding_rejects_out_of_range_ids():
    emb = Embedding(5, 2, rng=RNG)
    with pytest.raises(IndexError):
        emb.forward(np.array([5]))
    with pytest.raises(IndexError):
        emb.forward(np.array([-1]))


def test_dropout_eval_mode_is_identity():
    drop = Dropout(0.5, rng=RNG)
    drop.eval()
    x = RNG.normal(size=(10, 10))
    np.testing.assert_array_equal(drop.forward(x), x)
    np.testing.assert_array_equal(drop.backward(x), x)


def test_dropout_train_mode_preserves_expectation():
    drop = Dropout(0.3, rng=np.random.default_rng(0))
    x = np.ones((200, 200))
    out = drop.forward(x)
    # inverted dropout keeps E[out] == x
    assert out.mean() == pytest.approx(1.0, abs=0.02)
    zero_fraction = np.mean(out == 0.0)
    assert zero_fraction == pytest.approx(0.3, abs=0.02)


def test_dropout_backward_uses_same_mask():
    drop = Dropout(0.5, rng=np.random.default_rng(0))
    x = np.ones((50, 50))
    out = drop.forward(x)
    grad = drop.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad == 0.0, out == 0.0)


def test_dropout_invalid_rate():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_layernorm_output_statistics():
    ln = LayerNorm(16)
    x = RNG.normal(loc=3.0, scale=5.0, size=(8, 16))
    out = ln.forward(x)
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
    np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)


def test_layernorm_input_gradient():
    ln = LayerNorm(6)
    x = RNG.normal(size=(4, 6))
    w = RNG.normal(size=(4, 6))
    _check_input_grad(ln, x, w)


def test_layernorm_parameter_gradients():
    ln = LayerNorm(5)
    x = RNG.normal(size=(3, 5))
    w = RNG.normal(size=(3, 5))
    ln.forward(x)
    analytic = None
    ln.zero_grad()
    ln._cache.clear()
    ln.forward(x)
    ln.backward(w)
    analytic_gamma = ln.gamma.grad.copy()
    analytic_beta = ln.beta.grad.copy()

    def loss():
        return float(np.sum(w * layer_forward_nocache(ln, x)))

    assert relative_error(analytic_gamma, numerical_gradient(loss, ln.gamma.data)) < TOL
    assert relative_error(analytic_beta, numerical_gradient(loss, ln.beta.data)) < TOL


def test_sequential_and_mlp_backward_chain():
    mlp = MLP(4, [8, 8], 2, activation="tanh", rng=RNG)
    x = RNG.normal(size=(5, 4))
    out = mlp.forward(x)
    assert out.shape == (5, 2)
    grad = mlp.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_mlp_input_gradient_matches_numeric():
    mlp = MLP(3, [6], 2, activation="tanh", rng=RNG)
    x = RNG.normal(size=(2, 3))
    w = RNG.normal(size=(2, 2))
    out = mlp.forward(x)
    analytic = mlp.backward(w)

    def loss():
        y = mlp.forward(x)
        for layer in mlp.layers:
            if hasattr(layer, "_cache") and layer._cache:
                layer._cache.pop()
        return float(np.sum(w * y))

    numeric = numerical_gradient(loss, x)
    assert relative_error(analytic, numeric) < 1e-4


def test_sequential_indexing():
    seq = Sequential([Dense(2, 3, rng=RNG), Dense(3, 1, rng=RNG)])
    assert len(seq) == 2
    assert seq[0].out_dim == 3
