"""Tests for the Gaussian output head and the loss functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import GaussianOutput, gaussian_nll, gaussian_quantile, gaussian_sample
from repro.nn.gradcheck import numerical_gradient, relative_error
from repro.nn.losses import mae_loss, mse_loss, quantile_loss

TOL = 1e-5


def test_gaussian_output_sigma_always_positive():
    rng = np.random.default_rng(0)
    head = GaussianOutput(8, rng=rng)
    h = rng.normal(size=(100, 8)) * 10.0
    params = head.forward(h)
    assert np.all(params.sigma > 0.0)
    assert params.mu.shape == (100,)
    assert params.sigma.shape == (100,)


def test_gaussian_output_backward_shape_and_nonzero():
    rng = np.random.default_rng(1)
    head = GaussianOutput(6, rng=rng)
    h = rng.normal(size=(4, 6))
    params = head.forward(h)
    dh = head.backward(np.ones_like(params.mu), np.ones_like(params.sigma))
    assert dh.shape == h.shape
    assert not np.allclose(dh, 0.0)


def test_gaussian_head_end_to_end_gradient_through_nll():
    rng = np.random.default_rng(2)
    head = GaussianOutput(5, rng=rng)
    h = rng.normal(size=(3, 5))
    z = rng.normal(size=(3,))

    params = head.forward(h)
    loss, d_mu, d_sigma = gaussian_nll(z, params.mu, params.sigma)
    analytic_dh = head.backward(d_mu, d_sigma)

    def loss_fn():
        p = head.forward(h)
        head.clear_cache()
        l, _, _ = gaussian_nll(z, p.mu, p.sigma)
        return l

    numeric_dh = numerical_gradient(loss_fn, h)
    assert relative_error(analytic_dh, numeric_dh) < 1e-4


def test_gaussian_nll_gradients_match_numeric():
    rng = np.random.default_rng(3)
    z = rng.normal(size=(6,))
    mu = rng.normal(size=(6,))
    sigma = np.abs(rng.normal(size=(6,))) + 0.5
    loss, d_mu, d_sigma = gaussian_nll(z, mu, sigma)

    num_mu = numerical_gradient(lambda: gaussian_nll(z, mu, sigma)[0], mu)
    num_sigma = numerical_gradient(lambda: gaussian_nll(z, mu, sigma)[0], sigma)
    assert relative_error(d_mu, num_mu) < TOL
    assert relative_error(d_sigma, num_sigma) < TOL


def test_gaussian_nll_weighted_instances_count_more():
    z = np.array([0.0, 0.0])
    mu = np.array([1.0, 1.0])
    sigma = np.array([1.0, 1.0])
    base, d_mu, _ = gaussian_nll(z, mu, sigma)
    weighted, d_mu_w, _ = gaussian_nll(z, mu, sigma, weights=np.array([9.0, 1.0]))
    # equal errors -> weighting does not change the mean loss
    assert weighted == pytest.approx(base)
    # but the gradient concentrates on the up-weighted instance
    assert abs(d_mu_w[0]) > abs(d_mu_w[1])


def test_gaussian_nll_mask_ignores_positions():
    z = np.array([0.0, 100.0])
    mu = np.array([0.0, 0.0])
    sigma = np.array([1.0, 1.0])
    loss, d_mu, _ = gaussian_nll(z, mu, sigma, mask=np.array([1.0, 0.0]))
    assert loss == pytest.approx(0.5 * np.log(2 * np.pi))
    assert d_mu[1] == 0.0


def test_gaussian_nll_is_minimised_at_true_parameters():
    rng = np.random.default_rng(4)
    z = rng.normal(loc=2.0, scale=1.5, size=5000)
    mu_grid = np.linspace(0, 4, 41)
    losses = [gaussian_nll(z, np.full_like(z, m), np.full_like(z, 1.5))[0] for m in mu_grid]
    assert abs(mu_grid[int(np.argmin(losses))] - 2.0) < 0.15


def test_gaussian_sample_statistics():
    rng = np.random.default_rng(5)
    mu = np.array([1.0, -2.0])
    sigma = np.array([0.5, 2.0])
    samples = gaussian_sample(mu, sigma, rng, n_samples=20000)
    assert samples.shape == (20000, 2)
    np.testing.assert_allclose(samples.mean(axis=0), mu, atol=0.05)
    np.testing.assert_allclose(samples.std(axis=0), sigma, rtol=0.05)


def test_gaussian_quantile_median_and_symmetry():
    mu = np.array([3.0])
    sigma = np.array([2.0])
    np.testing.assert_allclose(gaussian_quantile(mu, sigma, 0.5), mu)
    lo = gaussian_quantile(mu, sigma, 0.1)
    hi = gaussian_quantile(mu, sigma, 0.9)
    np.testing.assert_allclose(hi - mu, mu - lo, rtol=1e-10)


def test_mse_and_mae_losses_and_gradients():
    pred = np.array([1.0, 2.0, 3.0])
    target = np.array([1.0, 0.0, 6.0])
    mse, dmse = mse_loss(pred, target)
    assert mse == pytest.approx((0 + 4 + 9) / 3)
    num = numerical_gradient(lambda: mse_loss(pred, target)[0], pred)
    assert relative_error(dmse, num) < TOL

    mae, dmae = mae_loss(pred, target)
    assert mae == pytest.approx((0 + 2 + 3) / 3)


def test_quantile_loss_gradient_and_asymmetry():
    pred = np.array([0.0, 0.0])
    target = np.array([1.0, -2.0])
    loss_med, grad = quantile_loss(pred, target, 0.5)
    assert loss_med == pytest.approx(0.75)
    loss_hi, _ = quantile_loss(pred, target, 0.9)
    # q=0.9 penalises under-prediction (target above pred) more
    assert loss_hi != pytest.approx(loss_med)
    num = numerical_gradient(lambda: quantile_loss(pred, target, 0.9)[0], pred)
    _, analytic = quantile_loss(pred, target, 0.9)
    assert relative_error(analytic, num) < TOL


def test_quantile_loss_invalid_quantile():
    with pytest.raises(ValueError):
        quantile_loss(np.zeros(2), np.zeros(2), 1.5)


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=-5, max_value=5),
    st.floats(min_value=0.2, max_value=3.0),
    st.floats(min_value=0.05, max_value=0.95),
)
def test_gaussian_quantile_is_monotone_in_q(mu, sigma, q):
    lo = gaussian_quantile(np.array([mu]), np.array([sigma]), max(q - 0.04, 0.01))
    hi = gaussian_quantile(np.array([mu]), np.array([sigma]), min(q + 0.04, 0.99))
    assert hi >= lo
