"""Gradient checks for the fused full-sequence training engine.

The fused ``forward_sequence`` / ``backward_sequence`` path and the fused
``MultiGaussianOutput`` head are verified three ways:

* against :mod:`repro.nn.gradcheck` central-difference gradients,
* against the retained stepwise reference path (``forward``/``backward``
  over the step API) to 1e-10,
* end-to-end through ``RankSeqModel`` (LSTM and GRU backbones,
  ``target_dim`` 1 and 3, with per-instance weights).
"""

import numpy as np
import pytest

from repro.models.deep.rankmodel import RankSeqModel
from repro.nn import MultiGaussianOutput, StackedGRU, StackedLSTM, gaussian_nll_seq
from repro.nn.gradcheck import numerical_gradient, relative_error

TOL = 1e-4
PARITY = 1e-10


def _grads(module):
    return {name: p.grad.copy() for name, p in module.named_parameters()}


def _assert_grad_parity(module, reference, atol=PARITY):
    for name, p in module.named_parameters():
        np.testing.assert_allclose(p.grad, reference[name], atol=atol, rtol=0,
                                   err_msg=name)


# ----------------------------------------------------------------------
# recurrent stacks: fused vs stepwise vs numerical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", [StackedLSTM, StackedGRU])
def test_forward_sequence_matches_stepwise(cls):
    rng = np.random.default_rng(0)
    net = cls(3, 5, num_layers=2, rng=1)
    x = rng.normal(size=(4, 7, 3))
    out_ref, states_ref = net.forward(x)
    net.clear_cache()
    out_fused, states_fused = net.forward_sequence(x)
    net.clear_cache()
    np.testing.assert_allclose(out_fused, out_ref, atol=PARITY, rtol=0)
    for fused, ref in zip(states_fused, states_ref):
        if isinstance(ref, tuple):
            for a, b in zip(fused, ref):
                np.testing.assert_allclose(a, b, atol=PARITY, rtol=0)
        else:
            np.testing.assert_allclose(fused, ref, atol=PARITY, rtol=0)


@pytest.mark.parametrize("cls", [StackedLSTM, StackedGRU])
def test_forward_sequence_nocache_matches_and_builds_no_cache(cls):
    rng = np.random.default_rng(1)
    net = cls(2, 4, num_layers=2, rng=2)
    x = rng.normal(size=(3, 5, 2))
    out_ref, _ = net.forward(x)
    net.clear_cache()
    out_eval, _ = net.forward_sequence(x, with_cache=False)
    np.testing.assert_allclose(out_eval, out_ref, atol=PARITY, rtol=0)
    for cell in net.cells:
        assert not cell._seq_cache, "no-cache eval must not retain BPTT tensors"
    with pytest.raises(RuntimeError):
        net.backward_sequence(np.zeros_like(out_ref))


@pytest.mark.parametrize("cls", [StackedLSTM, StackedGRU])
def test_backward_sequence_matches_stepwise_gradients(cls):
    rng = np.random.default_rng(2)
    net = cls(3, 4, num_layers=2, rng=3)
    x = rng.normal(size=(2, 6, 3))
    w = rng.normal(size=(2, 6, 4))
    net.zero_grad()
    net.forward(x)
    dx_ref = net.backward(w)
    reference = _grads(net)
    net.zero_grad()
    net.forward_sequence(x)
    dx_fused, _ = net.backward_sequence(w)
    np.testing.assert_allclose(dx_fused, dx_ref, atol=PARITY, rtol=0)
    _assert_grad_parity(net, reference)


@pytest.mark.parametrize("cls", [StackedLSTM, StackedGRU])
def test_backward_sequence_matches_numerical_gradients(cls):
    rng = np.random.default_rng(3)
    net = cls(2, 3, num_layers=2, rng=4)
    x = rng.normal(size=(2, 4, 2))
    w = rng.normal(size=(2, 4, 3))

    def loss():
        out, _ = net.forward_sequence(x, with_cache=False)
        return float(np.sum(w * out))

    net.zero_grad()
    net.forward_sequence(x)
    dx, _ = net.backward_sequence(w)
    numeric_dx = numerical_gradient(loss, x)
    assert relative_error(dx, numeric_dx) < TOL
    # one recurrent and one input parameter per layer
    cell0, cell1 = net.cells
    if cls is StackedLSTM:
        params = [cell0.w_x, cell0.bias, cell1.w_h]
    else:
        params = [cell0.w_x_gates, cell0.b_cand, cell1.w_h_cand]
    for param in params:
        numeric = numerical_gradient(loss, param.data)
        assert relative_error(param.grad, numeric) < TOL, param.name


def test_gru_cell_backward_sequence_with_default_initial_state():
    """Regression: fused GRU BPTT must work when h0 is left to default."""
    from repro.nn import GRUCell

    rng = np.random.default_rng(5)
    cell = GRUCell(2, 3, rng=6)
    x = rng.normal(size=(2, 4, 2))
    w = rng.normal(size=(2, 4, 3))
    cell.zero_grad()
    cell.forward(x)
    dx_ref = cell.backward(w)
    reference = _grads(cell)
    cell.zero_grad()
    cell.forward_sequence(x)  # no explicit h0
    dx_fused, _ = cell.backward_sequence(w)
    np.testing.assert_allclose(dx_fused, dx_ref, atol=PARITY, rtol=0)
    _assert_grad_parity(cell, reference)


def test_lstm_backward_sequence_with_final_state_gradient():
    rng = np.random.default_rng(4)
    net = StackedLSTM(2, 3, num_layers=1, rng=5)
    x = rng.normal(size=(2, 4, 2))
    w = rng.normal(size=(2, 4, 3))
    d_final = [(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))]

    def loss():
        out, states = net.forward_sequence(x, with_cache=False)
        h, c = states[0]
        return float(np.sum(w * out) + np.sum(d_final[0][0] * h) + np.sum(d_final[0][1] * c))

    net.zero_grad()
    net.forward_sequence(x)
    dx, _ = net.backward_sequence(w, d_final_states=d_final)
    numeric = numerical_gradient(loss, x)
    assert relative_error(dx, numeric) < TOL


def test_lstm_dropout_masks_match_stepwise_under_same_seed():
    x = np.random.default_rng(6).normal(size=(3, 5, 2))
    w = np.random.default_rng(7).normal(size=(3, 5, 8))
    step_net = StackedLSTM(2, 8, num_layers=2, dropout=0.4, rng=11)
    fused_net = StackedLSTM(2, 8, num_layers=2, dropout=0.4, rng=11)
    step_net.train(True)
    fused_net.train(True)
    # consume the mask stream identically: stepwise loop vs one fused draw
    step_net.zero_grad()
    out_ref, _ = step_net.forward(x)
    dx_ref = step_net.backward(w)
    fused_net.zero_grad()
    out_fused, _ = fused_net.forward_sequence(x)
    dx_fused, _ = fused_net.backward_sequence(w)
    np.testing.assert_allclose(out_fused, out_ref, atol=PARITY, rtol=0)
    np.testing.assert_allclose(dx_fused, dx_ref, atol=PARITY, rtol=0)
    reference = _grads(step_net)
    for name, p in fused_net.named_parameters():
        np.testing.assert_allclose(p.grad, reference[name], atol=PARITY, rtol=0)


# ----------------------------------------------------------------------
# fused Gaussian head
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target_dim", [1, 3])
def test_multi_gaussian_output_gradcheck(target_dim):
    rng = np.random.default_rng(8)
    head = MultiGaussianOutput(5, target_dim, rng=9)
    h = rng.normal(size=(4, 2, 5))
    z = rng.normal(size=(4, 2, target_dim))
    weights = rng.uniform(0.5, 2.0, size=4)

    def loss():
        mu, sigma = head.forward(h, with_cache=False)
        return gaussian_nll_seq(z, mu, sigma, weights=weights)[0]

    head.zero_grad()
    mu, sigma = head.forward(h)
    _, d_mu, d_sigma = gaussian_nll_seq(z, mu, sigma, weights=weights)
    dh = head.backward(d_mu, d_sigma)
    for param in (head.weight, head.bias):
        numeric = numerical_gradient(loss, param.data)
        assert relative_error(param.grad, numeric) < TOL, param.name
    numeric_dh = numerical_gradient(loss, h)
    assert relative_error(dh, numeric_dh) < TOL


def test_multi_gaussian_output_matches_separate_heads():
    """Same shared-rng draw order => identical parameters and outputs."""
    from repro.nn import GaussianOutput

    shared = np.random.default_rng(10)
    heads = [GaussianOutput(6, rng=shared) for _ in range(3)]
    fused = MultiGaussianOutput(6, 3, rng=np.random.default_rng(10))
    for d, head in enumerate(heads):
        np.testing.assert_array_equal(fused.weight.data[:, d : d + 1],
                                      head.mu_head.weight.data)
        np.testing.assert_array_equal(fused.weight.data[:, 3 + d : 4 + d],
                                      head.sigma_head.weight.data)
    h = np.random.default_rng(11).normal(size=(7, 6))
    mu, sigma = fused.forward(h, with_cache=False)
    for d, head in enumerate(heads):
        params = head.forward(h)
        head.clear_cache()
        np.testing.assert_allclose(mu[:, d], params.mu, atol=1e-12)
        np.testing.assert_allclose(sigma[:, d], params.sigma, atol=1e-12)


def test_multi_gaussian_output_rejects_bad_input():
    head = MultiGaussianOutput(4, 2, rng=0)
    with pytest.raises(ValueError):
        head.forward(np.zeros((3, 5)))
    with pytest.raises(ValueError):
        MultiGaussianOutput(4, 0)
    with pytest.raises(RuntimeError):
        head.backward(np.zeros((3, 2)), np.zeros((3, 2)))


# ----------------------------------------------------------------------
# end-to-end: RankSeqModel fused training vs stepwise reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backbone", ["lstm", "gru"])
@pytest.mark.parametrize("target_dim", [1, 3])
def test_rankseq_fused_loss_and_grads_match_stepwise(backbone, target_dim):
    rng = np.random.default_rng(12)
    batch = {
        "target": rng.uniform(1, 10, size=(4, 9, target_dim)),
        "covariates": rng.normal(size=(4, 9, 2)),
        "weight": np.array([1.0, 9.0, 1.0, 3.0]),
    }
    model = RankSeqModel(num_covariates=2, hidden_dim=5, num_layers=2,
                         target_dim=target_dim, encoder_length=7,
                         decoder_length=2, rng=13, backbone=backbone)
    model.eval()
    model.zero_grad()
    fused_loss = model.loss_and_backward(batch)
    fused_grads = _grads(model)
    model.zero_grad()
    stepwise_loss = model._forward_loss_stepwise(batch, with_backward=True)
    assert fused_loss == pytest.approx(stepwise_loss, abs=PARITY)
    for name, p in model.named_parameters():
        np.testing.assert_allclose(fused_grads[name], p.grad, atol=PARITY,
                                   rtol=0, err_msg=name)
    # validation runs the cache-free path and agrees with both
    val = model.validation_loss(batch)
    assert val == pytest.approx(fused_loss, abs=PARITY)
    for cell in model.lstm.cells:
        assert not cell._seq_cache


def test_rankseq_fused_parameter_gradients_match_numeric():
    rng = np.random.default_rng(14)
    batch = {
        "target": rng.uniform(1, 10, size=(3, 8)),
        "covariates": rng.normal(size=(3, 8, 2)),
        "weight": np.array([1.0, 9.0, 1.0]),
    }
    model = RankSeqModel(num_covariates=2, hidden_dim=4, num_layers=2,
                         encoder_length=6, decoder_length=2, rng=15)
    model.eval()
    model.zero_grad()
    model.loss_and_backward(batch)
    for param in [model.lstm.cells[0].w_x, model.lstm.cells[1].w_h,
                  model.head.weight, model.head.bias]:
        analytic = param.grad.copy()
        numeric = numerical_gradient(lambda: model.validation_loss(batch), param.data)
        assert relative_error(analytic, numeric) < TOL, param.name
