"""Tests for Parameter/Module bookkeeping."""

import numpy as np
import pytest

from repro.nn import Dense, MLP, Module, Parameter, StackedLSTM


class Composite(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Dense(3, 4, rng=0, name="fc1")
        self.fc2 = Dense(4, 2, rng=1, name="fc2")
        self.extra = Parameter(np.zeros((2, 2)), "extra")
        self.blocks = [Dense(2, 2, rng=2, name="b0"), Dense(2, 2, rng=3, name="b1")]


def test_named_parameters_discovers_attributes_lists_and_own_params():
    model = Composite()
    names = dict(model.named_parameters())
    assert "fc1.weight" in names and "fc1.bias" in names
    assert "fc2.weight" in names
    assert "extra" in names
    assert "blocks.0.weight" in names and "blocks.1.weight" in names
    # 4 dense layers (fc1, fc2, blocks.0, blocks.1) => weight+bias each, plus `extra`
    assert len(names) == 2 * 4 + 1


def test_num_parameters_counts_scalars():
    model = Dense(3, 4, rng=0)
    assert model.num_parameters() == 3 * 4 + 4


def test_zero_grad_resets_all_gradients():
    model = Composite()
    for p in model.parameters():
        p.grad += 1.0
    model.zero_grad()
    assert all(np.all(p.grad == 0.0) for p in model.parameters())


def test_state_dict_round_trip_restores_values():
    model = Composite()
    state = model.state_dict()
    for p in model.parameters():
        p.data += 5.0
    model.load_state_dict(state)
    for name, p in model.named_parameters():
        np.testing.assert_allclose(p.data, state[name])


def test_load_state_dict_rejects_missing_and_unexpected_keys():
    model = Dense(2, 2, rng=0)
    state = model.state_dict()
    bad = dict(state)
    bad.pop("weight")
    with pytest.raises(KeyError):
        model.load_state_dict(bad)
    bad = dict(state)
    bad["unknown"] = np.zeros(1)
    with pytest.raises(KeyError):
        model.load_state_dict(bad)


def test_load_state_dict_rejects_shape_mismatch():
    model = Dense(2, 2, rng=0)
    state = model.state_dict()
    state["weight"] = np.zeros((3, 3))
    with pytest.raises(ValueError):
        model.load_state_dict(state)


def test_train_eval_propagates_to_children():
    model = Composite()
    model.eval()
    assert not model.training
    assert not model.fc1.training
    assert not model.blocks[1].training
    model.train()
    assert model.blocks[0].training


def test_state_dict_is_a_copy_not_a_view():
    model = Dense(2, 2, rng=0)
    state = model.state_dict()
    model.weight.data[0, 0] = 123.0
    assert state["weight"][0, 0] != 123.0


def test_mlp_and_stacked_lstm_parameter_counts():
    mlp = MLP(4, [8], 2, rng=0)
    assert mlp.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)
    lstm = StackedLSTM(input_dim=3, hidden_dim=5, num_layers=2, rng=0)
    expected = (3 * 20 + 5 * 20 + 20) + (5 * 20 + 5 * 20 + 20)
    assert lstm.num_parameters() == expected
