"""State save/restore round-trips on the recurrent stacks.

A state exported mid-sequence and imported into a fresh replay must carry
the recurrence forward exactly: continuing from the restored state has to
match an uninterrupted from-scratch run to 1e-10 (the serving engine
relies on this to carry warm-up states between forecast origins).
"""

import numpy as np
import pytest

from repro.nn import StackedGRU, StackedLSTM, stable_matmul
from repro.nn.inference import (
    concat_states,
    recurrent_inference,
    slice_states,
    tile_states,
)


def run_steps(stepper, x, states):
    outputs = []
    for t in range(x.shape[1]):
        h, states = stepper.step(x[:, t, :], states)
        outputs.append(h)
    return np.stack(outputs, axis=1), states


@pytest.mark.parametrize("stack_cls", [StackedGRU, StackedLSTM])
def test_saverestore_roundtrip_matches_from_scratch_replay(stack_cls):
    stack = stack_cls(input_dim=3, hidden_dim=5, num_layers=2, rng=0)
    stepper = recurrent_inference(stack)
    x = np.random.default_rng(1).normal(size=(4, 12, 3))

    full, full_final = run_steps(stepper, x, stepper.zero_state(4))

    first, mid_states = run_steps(stepper, x[:, :5, :], stepper.zero_state(4))
    restored = stack.import_state(stack.export_state(mid_states))
    second, final_states = run_steps(stepper, x[:, 5:, :], restored)

    np.testing.assert_allclose(np.concatenate([first, second], axis=1), full, atol=1e-10)
    np.testing.assert_allclose(
        stack.export_state(final_states), stack.export_state(full_final), atol=1e-10
    )


def test_gru_saverestore_through_training_step_api():
    """The cached training ``step`` path honours restored states too."""
    stack = StackedGRU(input_dim=2, hidden_dim=4, num_layers=2, rng=3)
    x = np.random.default_rng(4).normal(size=(3, 8, 2))

    states = stack.zero_state(3)
    for t in range(8):
        h_full, states = stack.step(x[:, t, :], states)
    stack.clear_cache()

    states = stack.zero_state(3)
    for t in range(4):
        _, states = stack.step(x[:, t, :], states)
    stack.clear_cache()
    states = stack.import_state(stack.export_state(states))
    for t in range(4, 8):
        h_split, states = stack.step(x[:, t, :], states)
    stack.clear_cache()
    np.testing.assert_allclose(h_split, h_full, atol=1e-10)


@pytest.mark.parametrize("stack_cls", [StackedGRU, StackedLSTM])
def test_export_import_validation(stack_cls):
    stack = stack_cls(input_dim=3, hidden_dim=5, num_layers=2, rng=0)
    states = stack.zero_state(4)
    packed = stack.export_state(states)
    expected = (2, 2, 4, 5) if stack_cls is StackedLSTM else (2, 4, 5)
    assert packed.shape == expected
    with pytest.raises(ValueError):
        stack.export_state(states[:1])
    with pytest.raises(ValueError):
        stack.import_state(packed[..., :3])  # wrong hidden dim
    with pytest.raises(ValueError):
        stack.import_state(packed[:1])  # wrong layer count
    restored = stack.import_state(packed)
    restored[0] = None  # mutating the copy must not corrupt the original
    assert states[0] is not None


@pytest.mark.parametrize("stack_cls", [StackedGRU, StackedLSTM])
def test_tile_slice_concat_states(stack_cls):
    stack = stack_cls(input_dim=3, hidden_dim=5, num_layers=2, rng=0)
    stepper = recurrent_inference(stack)
    x = np.random.default_rng(2).normal(size=(3, 4, 3))
    _, states = run_steps(stepper, x, stepper.zero_state(3))

    tiled = tile_states(states, 2)  # every row twice
    packed = stack.export_state(tiled)
    assert packed.shape[-2] == 6
    np.testing.assert_array_equal(
        stack.export_state(slice_states(tiled, np.array([0, 2, 4]))),
        stack.export_state(states),
    )
    row0 = slice_states(states, np.array([0]))
    row12 = slice_states(states, np.array([1, 2]))
    np.testing.assert_array_equal(
        stack.export_state(concat_states([row0, row12])), stack.export_state(states)
    )


# ----------------------------------------------------------------------
# the batch-size-invariant matmul underneath it all
# ----------------------------------------------------------------------
def test_stable_matmul_matches_blas_numerically():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(700, 24))
    w = rng.normal(size=(24, 40))
    np.testing.assert_allclose(stable_matmul(x, w), x @ w, rtol=1e-12, atol=1e-12)


def test_stable_matmul_rows_invariant_to_batch_size():
    rng = np.random.default_rng(1)
    w = rng.normal(size=(30, 16))
    row = rng.normal(size=(1, 30))
    reference = stable_matmul(row, w)[0]
    for batch in (1, 3, 64, 256, 1000):
        batch_x = rng.normal(size=(batch, 30))
        batch_x[batch // 2] = row[0]
        result = stable_matmul(batch_x, w)[batch // 2]
        np.testing.assert_array_equal(result, reference)


def test_inference_kernels_match_training_forward():
    """The cache-free serving kernels agree numerically with the training path."""
    from repro.nn import GaussianOutput
    from repro.nn.inference import GaussianHeadInference, LSTMStackInference

    stack = StackedLSTM(input_dim=3, hidden_dim=8, num_layers=2, rng=0)
    x = np.random.default_rng(2).normal(size=(5, 3))
    h_train, _ = stack.step(x, stack.zero_state(5))
    stack.clear_cache()
    h_infer, _ = LSTMStackInference(stack).step(x, stack.zero_state(5))
    np.testing.assert_allclose(h_infer, h_train, atol=1e-12)

    head = GaussianOutput(8, rng=0)
    h = np.random.default_rng(1).normal(size=(17, 8))
    params = head.forward(h)
    head.clear_cache()
    mu, sigma = GaussianHeadInference(head)(h)
    np.testing.assert_allclose(mu, params.mu, atol=1e-12)
    np.testing.assert_allclose(sigma, params.sigma, atol=1e-12)
