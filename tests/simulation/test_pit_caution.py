"""Tests for the pit-stop strategy and caution generator."""

import numpy as np

from repro.simulation import CautionGenerator, DriverProfile, PitStrategy, TRACKS


def _driver(aggression=0.5, pit_crew=1.0):
    return DriverProfile(
        car_id=5,
        skill=0.0,
        consistency=0.003,
        pit_crew=pit_crew,
        aggression=aggression,
        reliability=1.0,
    )


def test_pit_strategy_never_exceeds_fuel_window():
    track = TRACKS["Indy500"]
    strat = PitStrategy(_driver(), track, np.random.default_rng(0))
    decision = strat.decide(pit_age=track.fuel_window_laps, caution=False, laps_remaining=100)
    assert decision.pit and decision.reason == "window"


def test_pit_strategy_target_inside_window():
    track = TRACKS["Indy500"]
    rng = np.random.default_rng(1)
    for _ in range(50):
        strat = PitStrategy(_driver(aggression=rng.random()), track, rng)
        assert 8 <= strat.target_stint <= track.fuel_window_laps


def test_pit_strategy_does_not_pit_on_first_laps_of_stint():
    track = TRACKS["Indy500"]
    strat = PitStrategy(_driver(), track, np.random.default_rng(2))
    for age in range(0, 5):
        assert not strat.decide(age, caution=False, laps_remaining=150).pit or age >= 3


def test_pit_strategy_caution_pits_more_likely_deep_in_stint():
    track = TRACKS["Indy500"]
    rng = np.random.default_rng(3)
    deep, shallow = 0, 0
    trials = 400
    for _ in range(trials):
        strat = PitStrategy(_driver(), track, rng)
        if strat.decide(pit_age=int(0.7 * track.fuel_window_laps), caution=True, laps_remaining=100).pit:
            deep += 1
        strat2 = PitStrategy(_driver(), track, rng)
        if strat2.decide(pit_age=4, caution=True, laps_remaining=100).pit:
            shallow += 1
    assert deep / trials > 0.6
    assert shallow / trials < 0.15


def test_pit_strategy_stays_out_when_fuel_reaches_the_finish():
    track = TRACKS["Indy500"]
    strat = PitStrategy(_driver(), track, np.random.default_rng(4))
    # 10 laps to go, 15 laps of fuel left -> no stop
    decision = strat.decide(pit_age=track.fuel_window_laps - 15, caution=False, laps_remaining=10)
    assert not decision.pit


def test_service_time_cheaper_under_caution_and_scales_with_crew():
    track = TRACKS["Indy500"]
    rng = np.random.default_rng(5)
    strat = PitStrategy(_driver(), track, rng)
    green = np.mean([strat.service_time(False) for _ in range(200)])
    yellow = np.mean([strat.service_time(True) for _ in range(200)])
    assert yellow < green
    assert green > track.pit_lane_loss_s

    slow_crew = PitStrategy(_driver(pit_crew=1.2), track, rng)
    fast_crew = PitStrategy(_driver(pit_crew=0.85), track, rng)
    assert np.mean([slow_crew.service_time(False) for _ in range(200)]) > np.mean(
        [fast_crew.service_time(False) for _ in range(200)]
    )


def test_reset_stint_redraws_target():
    track = TRACKS["Indy500"]
    strat = PitStrategy(_driver(), track, np.random.default_rng(6))
    targets = set()
    for _ in range(20):
        targets.add(strat.target_stint)
        strat.reset_stint()
    assert len(targets) > 1


def test_caution_generator_respects_lap_bounds():
    track = TRACKS["Indy500"]
    gen = CautionGenerator(track, np.random.default_rng(0), hazard_per_lap=1.0)
    assert gen.maybe_start_caution(2, [1, 2, 3]) is None
    assert gen.maybe_start_caution(track.total_laps, [1, 2, 3]) is None
    event = gen.maybe_start_caution(50, [1, 2, 3])
    assert event is not None
    assert 3 <= event.duration <= 15
    assert event.end_lap == event.start_lap + event.duration - 1


def test_caution_generator_hazard_rate_reasonable():
    track = TRACKS["Indy500"]
    gen = CautionGenerator(track, np.random.default_rng(1))
    events = 0
    for lap in range(5, track.total_laps):
        if gen.maybe_start_caution(lap, list(range(1, 34))) is not None:
            events += 1
    # a 200-lap Indy race typically sees a handful of cautions
    assert 1 <= events <= 15


def test_caution_generator_retirement_comes_from_active_cars():
    track = TRACKS["Indy500"]
    gen = CautionGenerator(track, np.random.default_rng(2), hazard_per_lap=1.0, retirement_prob=1.0)
    active = [4, 9, 17]
    for _ in range(10):
        event = gen.maybe_start_caution(60, active)
        assert event.retired_car in active
