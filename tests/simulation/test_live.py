"""Tests for the live-race fleet forecasting streamer."""

from dataclasses import replace

import numpy as np
import pytest

from repro.data import build_race_features
from repro.models import DeepARForecaster
from repro.simulation import LiveRaceForecaster, RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def race_and_forecaster():
    track = replace(track_for_year("Indy500", 2018), total_laps=60, num_cars=8)
    race = RaceSimulator(track, event="Indy500", year=2019, seed=3).run()
    series = build_race_features(race)
    forecaster = DeepARForecaster(encoder_length=12, decoder_length=2, hidden_dim=8,
                                  epochs=1, batch_size=32, max_train_windows=100, seed=0)
    forecaster.fit(series[:4])
    return race, series, forecaster


def test_live_forecaster_requires_fitted_model():
    unfitted = DeepARForecaster(encoder_length=12, decoder_length=2, hidden_dim=8, epochs=1)
    with pytest.raises(ValueError):
        LiveRaceForecaster(unfitted)


def test_forecast_at_returns_whole_field(race_and_forecaster):
    _, series, forecaster = race_and_forecaster
    live = LiveRaceForecaster(forecaster, horizon=2, n_samples=6, min_history=12, rng=0)
    forecasts = live.forecast_at(series, origin=20)
    eligible = [s.car_id for s in series if 12 <= 20 < len(s) - 1]
    assert sorted(forecasts) == sorted(eligible)
    for samples in forecasts.values():
        assert samples.shape == (6, 2)
        assert np.all((samples >= 1.0) & (samples <= 33.0))


def test_stream_carries_states_between_laps(race_and_forecaster):
    race, _, forecaster = race_and_forecaster
    live = LiveRaceForecaster(forecaster, horizon=2, n_samples=5, min_history=12, rng=0)
    origins = [origin for origin, _ in live.stream(race, start=14, stop=20)]
    assert origins == list(range(14, 21))
    stats = live.engine.stats
    # after the first lap every car advances incrementally (1 step per lap)
    assert stats["cache_carries"] > 0
    assert stats["warmup_steps"] < stats["requests"] * 11  # << full replays


def test_stream_respects_stride(race_and_forecaster):
    race, _, forecaster = race_and_forecaster
    live = LiveRaceForecaster(forecaster, horizon=2, n_samples=4, min_history=12, rng=0)
    origins = [origin for origin, _ in live.stream(race, start=14, stop=24, stride=5)]
    assert origins == [14, 19, 24]


def test_fine_tune_invalidates_live_carried_states(race_and_forecaster):
    race, series, forecaster = race_and_forecaster
    live = LiveRaceForecaster(forecaster, horizon=2, n_samples=4, min_history=12, rng=1)
    live.forecast_at(series, origin=20)
    assert live.engine.stats["cache_entries"] > 0
    forecaster.fine_tune(series[:2], epochs=1)
    # the carried warm-up states were computed under the old weights
    assert live.engine.stats["cache_entries"] == 0


def test_refit_rebinds_live_engine_to_new_model(race_and_forecaster):
    _, series, forecaster = race_and_forecaster
    live = LiveRaceForecaster(forecaster, horizon=2, n_samples=4, min_history=12, rng=2)
    engine_before = live.engine
    forecaster.fit(series[:3])
    # the engine resolves through the forecaster, so a re-fit swaps in a
    # fresh engine bound to the new model instead of serving stale weights
    assert live.engine is not engine_before
    assert live.engine.model is forecaster.model
    assert live.forecast_at(series, origin=20)  # still serves forecasts
