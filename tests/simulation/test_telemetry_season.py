"""Tests for the telemetry container, log format and season generation."""

import numpy as np
import pytest

from repro.simulation import (
    RaceTelemetry,
    generate_dataset,
    generate_event_dataset,
    simulate_race,
)


@pytest.fixture(scope="module")
def race():
    return simulate_race("Texas", 2017, seed=3)


def test_car_laps_view_is_lap_ordered(race):
    for car in race.car_ids()[:5]:
        cl = race.car_laps(car)
        assert np.all(np.diff(cl.laps) >= 1)
        assert len(cl) == cl.rank.size == cl.lap_time.size


def test_car_laps_unknown_car_raises(race):
    with pytest.raises(KeyError):
        race.car_laps(999)


def test_winner_is_rank_one_on_final_lap(race):
    winner = race.winner()
    assert race.ranks_at_lap(race.num_laps)[winner] == 1


def test_finishers_subset_of_car_ids(race):
    finishers = race.finishers()
    assert set(finishers) <= set(race.car_ids())
    assert len(finishers) >= 2


def test_ratios_in_unit_interval(race):
    assert 0.0 < race.pit_lap_ratio() <= 1.0
    assert 0.0 <= race.rank_changes_ratio() < 1.0
    assert 0.0 <= race.caution_lap_ratio() < 1.0


def test_csv_round_trip_preserves_all_columns(race):
    text = race.to_csv()
    clone = RaceTelemetry.from_csv(text, event=race.event, year=race.year, track=race.track)
    np.testing.assert_array_equal(clone.car_id, race.car_id)
    np.testing.assert_array_equal(clone.lap, race.lap)
    np.testing.assert_array_equal(clone.rank, race.rank)
    np.testing.assert_allclose(clone.lap_time, race.lap_time, atol=1e-4)
    np.testing.assert_array_equal(clone.is_pit, race.is_pit)
    np.testing.assert_array_equal(clone.is_caution, race.is_caution)


def test_save_and_load_round_trip(tmp_path, race):
    path = tmp_path / "texas2017.race"
    race.save(str(path))
    loaded = RaceTelemetry.load(str(path))
    assert loaded.event == "Texas"
    assert loaded.year == 2017
    assert loaded.num_laps == race.num_laps
    np.testing.assert_array_equal(loaded.rank, race.rank)


def test_npz_round_trip_is_lossless(tmp_path, race):
    """save/load runs on the shared npz+meta checkpoint format."""
    path = tmp_path / "texas2017.npz"
    race.save(str(path))
    with open(path, "rb") as fh:
        assert fh.read(2) == b"PK"  # zip container, i.e. a real npz payload
    loaded = RaceTelemetry.load(str(path))
    for column in RaceTelemetry._COLUMNS:
        np.testing.assert_array_equal(getattr(loaded, column), getattr(race, column))
    # exact float preservation — the textual log rounds to 4 decimals, the
    # checkpoint format must not lose a single bit
    np.testing.assert_array_equal(loaded.lap_time, race.lap_time)
    assert loaded.track == race.track
    assert loaded.race_id == race.race_id


def test_load_sniffs_legacy_csv_logs(tmp_path, race):
    path = tmp_path / "texas2017.log"
    race.save_csv(str(path))
    loaded = RaceTelemetry.load(str(path))
    assert loaded.event == "Texas" and loaded.year == 2017
    np.testing.assert_array_equal(loaded.rank, race.rank)
    np.testing.assert_allclose(loaded.lap_time, race.lap_time, atol=1e-4)


def test_npz_load_rejects_foreign_payloads(tmp_path):
    from repro.nn.checkpoint import write_npz

    path = tmp_path / "other.npz"
    write_npz(str(path), {"x": np.zeros(3)}, {"kind": "something-else"})
    with pytest.raises(ValueError, match="race-telemetry"):
        RaceTelemetry.load(str(path))


def test_from_csv_rejects_bad_header():
    with pytest.raises(ValueError):
        RaceTelemetry.from_csv("foo,bar\n1,2\n", event="Indy500", year=2018)


def test_lap_record_status_strings(race):
    records = race.to_records()
    pit_records = [r for r in records if r.is_pit]
    normal_records = [r for r in records if not r.is_pit]
    assert pit_records and normal_records
    assert pit_records[0].lap_status == "P"
    assert normal_records[0].lap_status == "T"
    caution_records = [r for r in records if r.is_caution]
    if caution_records:
        assert caution_records[0].track_status == "Y"
    assert normal_records[0].track_status in {"G", "Y"}


def test_generate_event_dataset_splits_by_year():
    split = generate_event_dataset("Indy500", years=[2016, 2017, 2018, 2019], base_seed=5)
    train_years = {r.year for r in split.train}
    assert train_years == {2016, 2017}
    assert [r.year for r in split.validation] == [2018]
    assert [r.year for r in split.test] == [2019]


def test_generate_event_dataset_deterministic_per_seed():
    a = generate_event_dataset("Iowa", years=[2018], base_seed=9)
    b = generate_event_dataset("Iowa", years=[2018], base_seed=9)
    np.testing.assert_array_equal(a.train[0].rank, b.train[0].rank)
    c = generate_event_dataset("Iowa", years=[2018], base_seed=10)
    assert not np.array_equal(a.train[0].rank, c.train[0].rank)


def test_generate_dataset_full_inventory_matches_table2():
    dataset = generate_dataset(base_seed=11)
    races = dataset.all_races()
    assert len(races) == 25
    rows = {row["event"]: row for row in dataset.summary_rows()}
    assert rows["Indy500"]["participants"] == [33]
    assert rows["Indy500"]["train_races"] == 5
    assert rows["Indy500"]["validation_races"] == 1
    assert rows["Indy500"]["test_races"] == 1
    assert rows["Texas"]["test_races"] == 2
    assert rows["Pocono"]["test_races"] == 1
    # different events have different seasons simulated independently
    indy = dataset.split("Indy500").test[0]
    texas = dataset.split("Texas").test[0]
    assert indy.num_laps != texas.num_laps


def test_generate_dataset_subset_of_events():
    dataset = generate_dataset(events=["Iowa"], years_per_event={"Iowa": [2017, 2019]}, base_seed=3)
    assert set(dataset.events) == {"Iowa"}
    races = dataset.all_races()
    assert {r.year for r in races} == {2017, 2019}
    with pytest.raises(KeyError):
        dataset.split("Indy500")
