"""Integration-level tests and invariants of the race engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import RaceSimulator, TRACKS, simulate_race, track_for_year


@pytest.fixture(scope="module")
def indy_race():
    return simulate_race("Indy500", 2018, seed=42)


@pytest.fixture(scope="module")
def iowa_race():
    return simulate_race("Iowa", 2019, seed=7)


def test_race_covers_full_distance(indy_race):
    assert indy_race.num_laps == 200
    assert len(indy_race.car_ids()) == 33


def test_ranks_form_a_permutation_per_lap(indy_race):
    for lap in range(1, indy_race.num_laps + 1):
        ranks = sorted(indy_race.ranks_at_lap(lap).values())
        assert ranks == list(range(1, len(ranks) + 1))


def test_rank_consistent_with_elapsed_time(indy_race):
    for lap in (1, 50, 120, 200):
        mask = indy_race.lap == lap
        elapsed = indy_race.elapsed_time[mask]
        ranks = indy_race.rank[mask]
        order = np.argsort(elapsed)
        assert np.array_equal(ranks[order], np.arange(1, len(ranks) + 1))


def test_time_behind_leader_nonnegative_and_zero_for_leader(indy_race):
    assert np.all(indy_race.time_behind_leader >= 0.0)
    leader_mask = indy_race.rank == 1
    np.testing.assert_allclose(indy_race.time_behind_leader[leader_mask], 0.0)


def test_elapsed_time_strictly_increasing_per_car(indy_race):
    for car in indy_race.car_ids():
        mask = indy_race.car_id == car
        order = np.argsort(indy_race.lap[mask])
        elapsed = indy_race.elapsed_time[mask][order]
        assert np.all(np.diff(elapsed) > 0)


def test_lap_times_physically_plausible(indy_race):
    base = TRACKS["Indy500"].base_lap_time_s
    assert indy_race.lap_time.min() > 0.8 * base
    # even a pit stop under green should stay well under 5 minutes
    assert indy_race.lap_time.max() < 300.0


def test_stints_bounded_by_fuel_window(indy_race):
    window = TRACKS["Indy500"].fuel_window_laps
    for car in indy_race.car_ids():
        cl = indy_race.car_laps(car)
        pit_idx = np.where(cl.is_pit)[0]
        last = -1
        for idx in pit_idx:
            assert idx - last <= window + 1
            last = idx
        # cars that finished the race must have pitted at least once
        if len(cl) == indy_race.num_laps:
            assert cl.num_pits >= 1


def test_average_pit_count_close_to_paper(indy_race):
    pits = [indy_race.car_laps(c).num_pits for c in indy_race.finishers()]
    assert 3.0 <= np.mean(pits) <= 8.0  # the paper reports ~6 stops per car


def test_pit_laps_slower_than_normal_laps(indy_race):
    pit_mean = indy_race.lap_time[indy_race.is_pit].mean()
    green_normal = indy_race.lap_time[~indy_race.is_pit & ~indy_race.is_caution].mean()
    assert pit_mean > green_normal + 15.0


def test_caution_laps_slower_than_green_laps(indy_race):
    caution_mean = indy_race.lap_time[indy_race.is_caution & ~indy_race.is_pit].mean()
    green_mean = indy_race.lap_time[~indy_race.is_caution & ~indy_race.is_pit].mean()
    assert caution_mean > green_mean * 1.3


def test_rank_changes_concentrate_on_pit_windows(indy_race):
    """Most rank movement should happen around pit stops (the paper's premise)."""
    pit_changes, clean_changes = [], []
    for car in indy_race.car_ids():
        cl = indy_race.car_laps(car)
        for i in range(1, len(cl) - 2):
            delta = abs(int(cl.rank[i + 2]) - int(cl.rank[i]))
            window_has_pit = bool(cl.is_pit[i - 1 : i + 3].any())
            (pit_changes if window_has_pit else clean_changes).append(delta)
    assert np.mean(pit_changes) > 3.0 * np.mean(clean_changes)


def test_caution_ranks_mostly_frozen(indy_race):
    """Under caution, if nobody in the field pits, ranks should barely move.

    (Rank changes *during* caution periods do happen, but they are caused by
    the pit cycle — cars that stay out gain positions — not by overtaking.)
    """
    # laps where the track is yellow and no car pits at all
    caution_laps = set(np.unique(indy_race.lap[indy_race.is_caution]))
    pit_laps = set(np.unique(indy_race.lap[indy_race.is_pit]))
    quiet_caution_laps = sorted(caution_laps - pit_laps)
    changes = 0
    total = 0
    for car in indy_race.car_ids():
        cl = indy_race.car_laps(car)
        lap_to_idx = {int(lap): i for i, lap in enumerate(cl.laps)}
        for lap in quiet_caution_laps:
            i = lap_to_idx.get(lap)
            j = lap_to_idx.get(lap + 1)
            if i is None or j is None or not indy_race.lap[indy_race.is_caution].size:
                continue
            if (lap + 1) in pit_laps or (lap + 1) not in caution_laps:
                continue
            total += 1
            changes += int(cl.rank[j] != cl.rank[i])
    if total:
        assert changes / total < 0.25


def test_retirements_shorten_trajectories(indy_race):
    lengths = [len(indy_race.car_laps(c)) for c in indy_race.car_ids()]
    assert max(lengths) == indy_race.num_laps
    # fields of 33 usually lose at least one car over 500 miles
    assert min(lengths) <= indy_race.num_laps


def test_determinism_same_seed_same_race():
    a = simulate_race("Texas", 2018, seed=123)
    b = simulate_race("Texas", 2018, seed=123)
    np.testing.assert_array_equal(a.rank, b.rank)
    np.testing.assert_allclose(a.lap_time, b.lap_time)
    c = simulate_race("Texas", 2018, seed=124)
    assert not np.array_equal(a.rank, c.rank)


def test_iowa_shorter_track_more_laps(iowa_race):
    assert iowa_race.num_laps == 300
    assert len(iowa_race.car_ids()) == 22


def test_race_simulator_accepts_custom_field():
    from repro.simulation import generate_field

    rng = np.random.default_rng(0)
    drivers = generate_field(10, rng)
    track = track_for_year("Texas", 2017)
    sim = RaceSimulator(track, event="Texas", year=2017, drivers=drivers, seed=rng)
    race = sim.run()
    assert len(race.car_ids()) <= 10
    assert race.num_laps > 0


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_rank_permutation_and_monotone_elapsed(seed):
    """Property test on a short race: ranks are permutations, elapsed is monotone."""
    track = track_for_year("Iowa", 2016)
    # shrink the race so the property test stays fast
    from dataclasses import replace

    small = replace(track, total_laps=40, num_cars=12)
    race = RaceSimulator(small, event="Iowa", year=2016, seed=seed).run()
    for lap in range(1, race.num_laps + 1):
        ranks = sorted(race.ranks_at_lap(lap).values())
        assert ranks == list(range(1, len(ranks) + 1))
    for car in race.car_ids():
        cl = race.car_laps(car)
        elapsed_diff = np.diff(cl.lap_time.cumsum())
        assert np.all(elapsed_diff > 0)
        assert np.all(np.diff(cl.laps) == 1)
