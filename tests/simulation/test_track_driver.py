"""Tests for the track catalogue and the driver field generator."""

import numpy as np
import pytest

from repro.simulation import (
    EVENT_YEARS,
    TRACKS,
    DriverProfile,
    generate_field,
    list_events,
    track_for_year,
)


def test_catalogue_matches_table2_events():
    assert set(list_events()) == {"Indy500", "Iowa", "Pocono", "Texas"}
    indy = TRACKS["Indy500"]
    assert indy.length_miles == pytest.approx(2.5)
    assert indy.total_laps == 200
    assert indy.num_cars == 33
    assert TRACKS["Iowa"].length_miles == pytest.approx(0.894)
    assert TRACKS["Texas"].total_laps == 228
    assert TRACKS["Pocono"].shape == "triangle"


def test_base_lap_time_consistent_with_speed():
    indy = TRACKS["Indy500"]
    # 2.5 miles at 175 mph ~ 51.4 s
    assert indy.base_lap_time_s == pytest.approx(2.5 / 175.0 * 3600.0)
    assert 45.0 < indy.base_lap_time_s < 60.0
    assert indy.caution_lap_time_s > indy.base_lap_time_s


def test_fuel_window_scales_with_track_length():
    assert TRACKS["Indy500"].fuel_window_laps == 50
    assert TRACKS["Iowa"].fuel_window_laps > TRACKS["Indy500"].fuel_window_laps
    assert TRACKS["Texas"].fuel_window_laps > TRACKS["Indy500"].fuel_window_laps


def test_track_for_year_applies_overrides():
    assert track_for_year("Iowa", 2019).total_laps == 300
    assert track_for_year("Iowa", 2018).total_laps == 250
    assert track_for_year("Pocono", 2018).total_laps == 200
    assert track_for_year("Texas", 2019).total_laps == 248
    assert track_for_year("Indy500", 2019).total_laps == 200


def test_track_for_year_unknown_event_raises():
    with pytest.raises(KeyError):
        track_for_year("Daytona", 2019)


def test_event_years_cover_paper_dataset():
    total_races = sum(len(v) for v in EVENT_YEARS.values())
    assert total_races == 25  # Table II: 25 races
    assert 2018 in EVENT_YEARS["Indy500"] and 2019 in EVENT_YEARS["Indy500"]
    assert 2014 not in EVENT_YEARS["Iowa"]


def test_generate_field_properties():
    rng = np.random.default_rng(0)
    field = generate_field(33, rng)
    assert len(field) == 33
    assert [d.car_id for d in field] == list(range(1, 34))
    skills = np.array([d.skill for d in field])
    assert skills.mean() == pytest.approx(0.0, abs=1e-12)
    assert np.all(np.diff(skills) >= 0)  # sorted: car 1 fastest
    for d in field:
        assert d.consistency > 0
        assert 0.8 <= d.pit_crew <= 1.25
        assert 0.0 < d.aggression < 1.0
        assert 0.99 <= d.reliability <= 1.0


def test_generate_field_requires_two_cars():
    with pytest.raises(ValueError):
        generate_field(1, np.random.default_rng(0))


def test_expected_lap_time_uses_skill_offset():
    d = DriverProfile(car_id=1, skill=-0.01, consistency=0.003, pit_crew=1.0, aggression=0.5, reliability=1.0)
    assert d.expected_lap_time(50.0) == pytest.approx(49.5)
