"""Tests for the kernel benchmarks, roofline model, device models and breakdown."""

import numpy as np
import pytest

from repro.profiling import (
    DEFAULT_PLATFORM,
    DEVICES,
    KernelSpec,
    LSTM_KERNELS,
    TABLE8_SPECS,
    analytic_intensities,
    attainable_gflops,
    benchmark_kernels,
    cpu_kernel_shares,
    device_training_speed,
    hybrid_breakdown,
    kernel_workload,
    lstm_flops_per_sample,
    measure_cpu_training_speed,
    offload_fraction_for_batch,
    roofline_points,
)


@pytest.fixture(scope="module")
def measurements():
    return benchmark_kernels(batch_sizes=(32, 512), min_repeats=3, target_seconds=0.01)


def test_kernel_workload_counts():
    spec = KernelSpec(batch_size=32, input_dim=40, hidden_dim=40)
    matmul = kernel_workload("MatMul", spec)
    assert matmul["flops"] == pytest.approx(2 * 32 * 80 * 160)
    add = kernel_workload("Add", spec)
    assert add["flops"] == pytest.approx(32 * 160)
    with pytest.raises(ValueError):
        kernel_workload("Conv", spec)


def test_matmul_intensity_grows_with_batch_size():
    rows = analytic_intensities(batch_sizes=(32, 3200))
    ai = {(r["kernel"], r["batch_size"]): r["arithmetic_intensity"] for r in rows}
    assert ai[("MatMul", 3200)] > ai[("MatMul", 32)]
    # element-wise kernels have constant, low intensity
    assert ai[("Add", 3200)] == pytest.approx(ai[("Add", 32)])
    assert ai[("Add", 32)] < 1.0


def test_benchmark_kernels_measures_all_kernels(measurements):
    kernels_seen = {(m.kernel, m.batch_size) for m in measurements}
    assert kernels_seen == {(k, b) for k in LSTM_KERNELS for b in (32, 512)}
    for m in measurements:
        assert m.seconds > 0 and m.repeats >= 3
        assert m.gflops > 0
        assert m.us_per_call > 0


def test_matmul_far_more_compute_efficient_than_elementwise(measurements):
    """Fig. 11: the GEMM kernel sits far above the element-wise kernels in
    achieved GOPS (it is the only kernel with meaningful data reuse), and the
    element-wise kernels' per-call cost scales with the batch size."""
    for batch in (32, 512):
        matmul = next(m for m in measurements if m.kernel == "MatMul" and m.batch_size == batch)
        for kernel in ("Mul", "Add"):
            elem = next(m for m in measurements if m.kernel == kernel and m.batch_size == batch)
            assert matmul.gflops > 3.0 * elem.gflops
    add_small = next(m for m in measurements if m.kernel == "Add" and m.batch_size == 32)
    add_large = next(m for m in measurements if m.kernel == "Add" and m.batch_size == 512)
    assert add_large.us_per_call > add_small.us_per_call * 3.0


def test_roofline_points_and_bounds(measurements):
    points = roofline_points(measurements)
    assert len(points) == len(measurements)
    for p in points:
        assert p.bound_gflops > 0
        assert 0.0 <= p.efficiency <= 1.0
    assert attainable_gflops(DEFAULT_PLATFORM, 1e9) == DEFAULT_PLATFORM.vector_peak_gflops
    assert attainable_gflops(DEFAULT_PLATFORM, 0.1) == pytest.approx(6.8)


def test_roofline_envelope_monotone():
    grid = [0.01, 0.1, 1.0, 10.0, 100.0]
    lines = DEFAULT_PLATFORM.rooflines(grid)
    for level, values in lines.items():
        assert np.all(np.diff(values) >= 0)
        assert values.max() <= DEFAULT_PLATFORM.vector_peak_gflops + 1e-9


# ----------------------------------------------------------------------
# device models / Fig. 10
# ----------------------------------------------------------------------
def test_device_catalogue_and_table8():
    assert set(DEVICES) == {"CPU", "GPU", "GPU cuDNN", "VE"}
    assert len(TABLE8_SPECS) == 3
    assert DEVICES["GPU cuDNN"].kernels_per_step < DEVICES["GPU"].kernels_per_step


def test_device_us_per_sample_decreases_with_batch_size():
    flops = lstm_flops_per_sample()
    for device in DEVICES.values():
        small = device.us_per_sample(32, flops / 62, steps_per_sample=62)
        large = device.us_per_sample(3200, flops / 62, steps_per_sample=62)
        assert large < small


def test_fig10_shape_gpu_cudnn_fastest_and_ve_beats_cpu_at_large_batch():
    points = device_training_speed(batch_sizes=(32, 3200))
    by = {(p.device, p.batch_size): p.us_per_sample for p in points}
    # cuDNN-fused implementation is the fastest at every batch size
    for batch in (32, 3200):
        assert by[("GPU cuDNN", batch)] <= min(
            by[("CPU", batch)], by[("GPU", batch)], by[("VE", batch)]
        )
    # offloading pays off only at large batch sizes
    assert by[("VE", 3200)] < by[("CPU", 3200)]
    # every device improves from batch 32 to 3200, CPU included
    assert by[("CPU", 3200)] < by[("CPU", 32)]


def test_measured_cpu_training_speed_improves_with_batch():
    points = measure_cpu_training_speed(batch_sizes=(16, 128), seq_len=12, repeats=1)
    by = {p.batch_size: p.us_per_sample for p in points}
    assert by[128] < by[16]
    assert all(p.source == "measured" for p in points)


# ----------------------------------------------------------------------
# Fig. 12 breakdown
# ----------------------------------------------------------------------
def test_offload_fraction_grows_with_batch():
    ve = DEVICES["VE"]
    small = offload_fraction_for_batch(32, ve)
    large = offload_fraction_for_batch(3200, ve)
    assert 0.0 < small < large <= ve.offload_fraction


def test_cpu_kernel_shares_sum_to_one(measurements):
    shares = cpu_kernel_shares(measurements, batch_size=32)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert all(v > 0 for v in shares.values())
    # at the large batch size the GEMM group dominates the element-wise group
    shares_large = cpu_kernel_shares(measurements, batch_size=512)
    assert shares_large["matmul_mul"] > 0.15
    with pytest.raises(ValueError):
        cpu_kernel_shares(measurements, batch_size=999)


def test_hybrid_breakdown_fig12_shape(measurements):
    entries = hybrid_breakdown(batch_sizes=(32, 512), measurements=measurements)
    by_batch = {}
    for e in entries:
        by_batch.setdefault(e.batch_size, {})[e.component] = e.share
    for batch, components in by_batch.items():
        assert sum(components.values()) == pytest.approx(1.0)
    # more work runs on the VE at the larger batch size
    ve_small = sum(v for k, v in by_batch[32].items() if "(VE)" in k)
    ve_large = sum(v for k, v in by_batch[512].items() if "(VE)" in k)
    assert ve_large > ve_small
    assert by_batch[32]["Data movement"] < by_batch[512]["Data movement"] + 0.2
    rows = [e.as_row() for e in entries]
    assert all("share_pct" in r for r in rows)


def test_fleet_inference_breakdown_rows():
    from repro.profiling import fleet_inference_breakdown

    rows = fleet_inference_breakdown(n_cars=4, n_samples=8, n_origins=2,
                                     encoder_length=10, hidden_dim=8)
    strategies = [m.strategy for m in rows]
    assert strategies == ["per-car loop", "fleet-exact", "fleet-carry"]
    for m in rows:
        assert m.forecasts == 8
        assert m.wall_s > 0.0
        assert set(m.as_row()) == {"strategy", "wall_ms", "forecasts",
                                   "forecasts_per_s", "speedup_vs_loop"}
    loop, exact, carry = rows
    assert loop.speedup_vs_loop == pytest.approx(1.0)
    # no wall-clock assertions here: this is a milliseconds-scale smoke
    # workload and CI runners are noisy — the real >=5x speedup gate lives
    # in benchmarks/test_bench_fleet_inference.py on a full-size workload
    assert exact.speedup_vs_loop > 0.0
    assert carry.speedup_vs_loop > 0.0
