"""End-to-end integration tests across all subsystems.

These tests run the full pipeline — simulate races, engineer features,
train models, forecast, evaluate — on deliberately tiny configurations so
they finish quickly while still exercising every cross-module seam.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.data import BatchLoader, FeatureSpec, build_race_features, make_windows
from repro.evaluation import ShortTermEvaluator, StintEvaluator
from repro.models import (
    CurRankForecaster,
    DeepARForecaster,
    RankNetForecaster,
    XGBoostForecaster,
)
from repro.nn import Trainer
from repro.simulation import RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def pipeline_data():
    track = replace(track_for_year("Indy500", 2018), total_laps=110, num_cars=16)
    train_races = [
        RaceSimulator(track, event="Indy500", year=2016 + i, seed=40 + i).run() for i in range(2)
    ]
    test_race = RaceSimulator(track, event="Indy500", year=2019, seed=99).run()
    train = [s for race in train_races for s in build_race_features(race)]
    test = build_race_features(test_race)
    return train, test


def test_full_pipeline_ranknet_trains_and_tracks_the_baseline(pipeline_data):
    """End-to-end sanity of the full pipeline at toy scale.

    At this deliberately tiny scale (two short training races, 12 epochs)
    the deep model cannot be expected to *beat* the persistence baseline —
    that comparison is the job of the benchmark harness (Table V) at the
    quick/full profiles.  Here we assert the pipeline learns something
    sensible: its forecasts are well inside the valid rank range, its
    pit-window error stays within a modest factor of CurRank's, and an
    untrained copy of the same model is clearly worse.
    """
    train, test = pipeline_data
    model = RankNetForecaster(
        variant="oracle", encoder_length=20, decoder_length=2, hidden_dim=24,
        epochs=12, lr=3e-3, max_train_windows=1500, seed=3,
    )
    model.fit(train)
    evaluator = ShortTermEvaluator(horizon=2, n_samples=20, origin_stride=6)
    ranknet = evaluator.evaluate(model, test)
    currank = evaluator.evaluate(CurRankForecaster(), test)
    assert ranknet.metric("pit_covered", "mae") < currank.metric("pit_covered", "mae") * 1.8
    assert ranknet.metric("all", "mae") < 3.0

    untrained = RankNetForecaster(
        variant="oracle", encoder_length=20, decoder_length=2, hidden_dim=24,
        epochs=0, max_train_windows=1500, seed=3,
    )
    untrained.fit(train[:2])
    untrained_result = evaluator.evaluate(untrained, test[:4])
    trained_result = evaluator.evaluate(model, test[:4])
    assert trained_result.metric("all", "mae") < untrained_result.metric("all", "mae")


def test_full_pipeline_taskb_deep_model_predicts_change_direction(pipeline_data):
    train, test = pipeline_data
    model = RankNetForecaster(
        variant="oracle", encoder_length=20, decoder_length=2, hidden_dim=24,
        epochs=12, lr=3e-3, max_train_windows=1500, seed=4,
    )
    model.fit(train)
    evaluator = StintEvaluator(n_samples=20)
    deep = evaluator.evaluate(model, test)
    naive = evaluator.evaluate(CurRankForecaster(), test)
    assert deep.num_stints == naive.num_stints > 0
    assert deep.metrics["sign_acc"] >= naive.metrics["sign_acc"]


def test_full_pipeline_ml_baseline_runs(pipeline_data):
    train, test = pipeline_data
    model = XGBoostForecaster(n_estimators=15, origin_stride=6, max_instances=2000)
    model.fit(train)
    result = ShortTermEvaluator(horizon=2, n_samples=5, origin_stride=10).evaluate(model, test)
    assert np.isfinite(result.metric("all", "mae"))


def test_full_pipeline_deepar_without_covariates(pipeline_data):
    train, test = pipeline_data
    model = DeepARForecaster(
        encoder_length=20, decoder_length=2, hidden_dim=16, epochs=5, lr=3e-3,
        max_train_windows=800, seed=5,
    )
    model.fit(train)
    fc = model.forecast(test[0], origin=40, horizon=2, n_samples=15)
    assert fc.samples.shape == (15, 2)
    assert np.all(fc.samples >= 1.0)


def test_windows_loader_trainer_roundtrip(pipeline_data):
    """The generic Trainer drives the RankSeqModel through the BatchLoader."""
    from repro.models import RankSeqModel

    train, _ = pipeline_data
    ds = make_windows(train[:8], encoder_length=15, decoder_length=2)
    loader = BatchLoader(ds, batch_size=32, shuffle=True, spec=FeatureSpec(), rng=0)
    model = RankSeqModel(num_covariates=9, hidden_dim=12, encoder_length=15, decoder_length=2, rng=0)
    trainer = Trainer(model, lr=3e-3, max_epochs=3)
    history = trainer.fit(loader.batches, loader.batches)
    assert history.num_epochs == 3
    assert history.train_loss[-1] < history.train_loss[0]


def test_forecast_reproducibility_same_seed(pipeline_data):
    train, test = pipeline_data
    def build():
        m = RankNetForecaster(variant="oracle", encoder_length=15, decoder_length=2,
                              hidden_dim=12, epochs=2, max_train_windows=400, seed=11)
        m.fit(train[:6])
        return m.forecast(test[0], origin=40, horizon=2, n_samples=10).samples

    a = build()
    b = build()
    np.testing.assert_allclose(a, b)
