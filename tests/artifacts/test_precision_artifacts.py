"""Artifact round trips at every precision tier (schema v2).

* ``precision="float64"`` keeps writing the unchanged schema-v1 layout —
  byte-identical on disk, loadable by pre-v2 builds;
* ``float32`` / ``int8`` artifacts are stamped schema v2, round-trip
  bit-exactly (the int8 quantisation payload is re-emitted verbatim on a
  save/load/save cycle), and are refused with a clear error by a build
  whose reader predates v2.
"""

from dataclasses import replace

import numpy as np
import pytest

import repro.models.base as models_base
from repro.artifacts import ArtifactStore
from repro.artifacts.store import ArtifactSchemaError
from repro.data import build_race_features
from repro.models import DeepARForecaster, from_artifact
from repro.simulation import RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=200,
)


@pytest.fixture(scope="module")
def fitted():
    track = replace(track_for_year("Indy500", 2018), total_laps=60, num_cars=8)
    race = RaceSimulator(track, event="Indy500", year=2019, seed=3).run()
    series = build_race_features(race)
    return DeepARForecaster(seed=5, **DEEP_KWARGS).fit(series[:4])


def test_float64_artifact_keeps_schema_v1(fitted):
    artifact = fitted.to_artifact()
    assert artifact.schema_version == 1
    assert "precision" not in artifact.state
    restored = from_artifact(artifact)
    assert restored.loaded_precision == "float64"
    for name, array in fitted.to_artifact().arrays.items():
        np.testing.assert_array_equal(array, artifact.arrays[name])


def test_float32_artifact_round_trips_bit_exactly(fitted):
    artifact = fitted.to_artifact(precision="float32")
    assert artifact.schema_version == 2
    assert artifact.state["precision"] == "float32"
    for array in artifact.arrays.values():
        assert array.dtype != np.float64
    restored = from_artifact(artifact)
    assert restored.loaded_precision == "float32"
    again = restored.to_artifact(precision="float32")
    for name, array in artifact.arrays.items():
        np.testing.assert_array_equal(array, again.arrays[name])


def test_int8_artifact_round_trips_payload_bit_exactly(fitted):
    artifact = fitted.to_artifact(precision="int8")
    assert artifact.schema_version == 2
    assert artifact.state["precision"] == "int8"
    q_names = [n for n in artifact.arrays if n.endswith("::q")]
    assert q_names, "int8 artifact must carry quantisation payload pairs"
    for name in q_names:
        assert artifact.arrays[name].dtype == np.int8
        assert artifact.arrays[name[:-3] + "::scale"].dtype == np.float32
    restored = from_artifact(artifact)
    assert restored.loaded_precision == "int8"
    # a save/load/save cycle re-emits the cached payload verbatim
    again = restored.to_artifact(precision="int8")
    assert set(again.arrays) == set(artifact.arrays)
    for name, array in artifact.arrays.items():
        np.testing.assert_array_equal(array, again.arrays[name])


@pytest.mark.parametrize("precision", ["float64", "float32", "int8"])
def test_store_round_trip_preserves_forecasts(tmp_path, fitted, precision):
    store = ArtifactStore(str(tmp_path))
    store.save_model("deepar", fitted, precision=precision)
    entry = store.entry("deepar")
    assert entry["schema_version"] == (1 if precision == "float64" else 2)
    restored = store.load_model("deepar")
    assert restored.loaded_precision == precision
    # reloading is deterministic: a second load produces the same weights
    twice = store.load_model("deepar")
    a, b = restored.to_artifact(precision=precision), twice.to_artifact(precision=precision)
    for name, array in a.arrays.items():
        np.testing.assert_array_equal(array, b.arrays[name])


def test_low_precision_artifact_refused_by_older_store(tmp_path, fitted, monkeypatch):
    store = ArtifactStore(str(tmp_path))
    store.save_model("deepar", fitted, precision="float32")
    # a pre-v2 build: its reader only understands schema 1
    monkeypatch.setattr(models_base, "ARTIFACT_SCHEMA_VERSION", 1)
    with pytest.raises(ArtifactSchemaError, match="schema version 2.*reads <= 1"):
        ArtifactStore(str(tmp_path)).load("deepar")
    # float64 artifacts keep loading on that same older build
    store64 = ArtifactStore(str(tmp_path / "v1"))
    store64.save_model("naive64", fitted)
    assert store64.load_model("naive64").loaded_precision == "float64"
