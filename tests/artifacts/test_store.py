"""Tests for the on-disk ArtifactStore: manifest, integrity, schema guards."""

import json
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import (
    ArtifactIntegrityError,
    ArtifactNotFoundError,
    ArtifactSchemaError,
    ArtifactStore,
    config_hash,
    fingerprint_series,
)
from repro.data import build_race_features
from repro.models import ArimaForecaster, CurRankForecaster
from repro.nn.checkpoint import read_npz, write_npz
from repro.simulation import RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def tiny_series():
    track = replace(track_for_year("Iowa", 2018), total_laps=60, num_cars=8)
    race = RaceSimulator(track, event="Iowa", year=2018, seed=4).run()
    return build_race_features(race)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def test_save_load_round_trip_and_manifest(store, tiny_series):
    model = ArimaForecaster(seed=2).fit(tiny_series[:3])
    entry = store.save_model("arima-main", model, data_fingerprint="abc123")
    assert entry["family"] == "ArimaForecaster"
    assert entry["data_fingerprint"] == "abc123"
    assert store.names() == ["arima-main"]
    assert "arima-main" in store and len(store) == 1

    clone = store.load_model("arima-main")
    forecast_a = model.forecast(tiny_series[0], 15, 4, n_samples=5)
    forecast_b = clone.forecast(tiny_series[0], 15, 4, n_samples=5)
    np.testing.assert_array_equal(forecast_a.samples, forecast_b.samples)

    # manifest survives re-opening the store from disk
    reopened = ArtifactStore(store.root)
    assert reopened.names() == ["arima-main"]
    assert reopened.entries()["arima-main"]["sha256"] == entry["sha256"]


def test_integrity_check_catches_corruption(store, tiny_series):
    store.save_model("m", CurRankForecaster().fit(tiny_series[:2]))
    payload = os.path.join(store.root, "m.npz")
    with open(payload, "r+b") as fh:
        fh.seek(40)
        fh.write(b"\xff\xff\xff")
    with pytest.raises(ArtifactIntegrityError):
        store.load("m")
    with pytest.raises(ArtifactIntegrityError):
        store.verify_all()


def test_verify_flag_skips_checksum_comparison(store, tiny_series):
    store.save_model("m", CurRankForecaster().fit(tiny_series[:2]))
    # tamper with the *recorded* checksum: the payload itself is intact, so
    # verify=False still reads it while verify=True refuses
    store._manifest["m"]["sha256"] = "0" * 64
    with pytest.raises(ArtifactIntegrityError):
        store.load("m")
    assert store.load("m", verify=False).family == "CurRankForecaster"


def test_missing_artifact_and_missing_payload(store, tiny_series):
    with pytest.raises(ArtifactNotFoundError):
        store.load("ghost")
    store.save_model("m", CurRankForecaster().fit(tiny_series[:2]))
    os.remove(os.path.join(store.root, "m.npz"))
    with pytest.raises(ArtifactNotFoundError):
        store.load("m")


def test_schema_version_guards(store, tiny_series):
    store.save_model("m", CurRankForecaster().fit(tiny_series[:2]))
    payload = os.path.join(store.root, "m.npz")
    arrays, meta = read_npz(payload)
    meta["schema_version"] = 999
    write_npz(payload, arrays, meta)
    # refresh the checksum so the schema guard (not integrity) trips
    from repro.artifacts.store import _file_sha256

    store._manifest["m"]["sha256"] = _file_sha256(payload)
    with pytest.raises(ArtifactSchemaError):
        store.load("m")

    # a manifest written by a newer store version refuses to open
    manifest_path = store.manifest_path
    with open(manifest_path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    document["schema_version"] = 999
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    with pytest.raises(ArtifactSchemaError):
        ArtifactStore(store.root)


def test_delete_removes_payload_and_manifest_entry(store, tiny_series):
    store.save_model("m", CurRankForecaster().fit(tiny_series[:2]))
    store.delete("m")
    assert "m" not in store
    assert not os.path.exists(os.path.join(store.root, "m.npz"))
    with pytest.raises(ArtifactNotFoundError):
        store.delete("m")


def test_name_validation(store, tiny_series):
    artifact = CurRankForecaster().fit(tiny_series[:2]).to_artifact()
    with pytest.raises(ValueError):
        store.save("../escape", artifact)
    with pytest.raises(ValueError):
        store.save("bad name", artifact)


def test_key_for_combines_family_config_and_fingerprint():
    key = ArtifactStore.key_for("Fam", {"a": 1}, "deadbeef")
    assert key.startswith("Fam-")
    assert key.endswith("-deadbeef")
    assert ArtifactStore.key_for("Fam", {"a": 1}) != ArtifactStore.key_for("Fam", {"a": 2})
    assert config_hash({"a": 1}) == config_hash({"a": 1})


def test_fingerprint_series_tracks_data_changes(tiny_series):
    base = fingerprint_series(tiny_series[:3])
    assert base == fingerprint_series(tiny_series[:3])
    assert base != fingerprint_series(tiny_series[:2])
    assert base != fingerprint_series(tiny_series[:3], extra=tiny_series[3:4])


def test_fingerprint_sees_covariate_only_edits(tiny_series):
    """Edits that leave ranks intact must still invalidate the cache key."""
    from dataclasses import replace as dc_replace

    base = fingerprint_series(tiny_series[:1])
    edited_cov = dc_replace(
        tiny_series[0], covariates=tiny_series[0].covariates + 1.0
    )
    edited_laptime = dc_replace(tiny_series[0], lap_time=tiny_series[0].lap_time + 0.5)
    assert fingerprint_series([edited_cov]) != base
    assert fingerprint_series([edited_laptime]) != base
