"""Tests for --artifacts-dir train-once caching in the experiment harness."""

from dataclasses import replace as dc_replace

import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.experiments import common
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import main as runner_main
from repro.models import RandomForestForecaster
from repro.simulation import RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def tiny_series():
    track = dc_replace(track_for_year("Iowa", 2018), total_laps=60, num_cars=8)
    race = RaceSimulator(track, event="Iowa", year=2018, seed=4).run()
    return build_race_features(race)


@pytest.fixture(autouse=True)
def fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


def test_train_model_registers_and_reuses_artifacts(tmp_path, tiny_series, monkeypatch):
    config = ExperimentConfig(artifacts_dir=str(tmp_path / "store"), ml_max_instances=400)
    model = common.train_model("RandomForest", config, tiny_series[:4], tiny_series[4:6])
    store = ArtifactStore(config.artifacts_dir)
    assert len(store) == 1
    name = store.names()[0]
    assert name.startswith("RandomForestForecaster-")
    assert store.entries()[name]["data_fingerprint"] in name

    # a fresh process (simulated by clearing the in-memory cache) must load
    # the artifact instead of refitting
    common.clear_caches()

    def boom(self, *args, **kwargs):
        raise AssertionError("fit() called despite a registered artifact")

    monkeypatch.setattr(RandomForestForecaster, "fit", boom)
    reloaded = common.train_model("RandomForest", config, tiny_series[:4], tiny_series[4:6])
    forecast_a = model.forecast(tiny_series[0], 15, 3, n_samples=4)
    forecast_b = reloaded.forecast(tiny_series[0], 15, 3, n_samples=4)
    assert (forecast_a.samples == forecast_b.samples).all()


def test_changed_data_or_config_misses_the_cache(tmp_path, tiny_series):
    config = ExperimentConfig(artifacts_dir=str(tmp_path / "store"), ml_max_instances=400)
    common.train_model("CurRank", config, tiny_series[:4])
    common.clear_caches()
    # different training data -> new fingerprint -> second artifact
    common.train_model("CurRank", config, tiny_series[:3])
    store = ArtifactStore(config.artifacts_dir)
    assert len(store) == 2


def test_cache_tag_separates_artifacts(tmp_path, tiny_series):
    config = ExperimentConfig(artifacts_dir=str(tmp_path / "store"), ml_max_instances=400)
    common.train_model("CurRank", config, tiny_series[:4], cache_tag="event:Iowa")
    common.clear_caches()
    common.train_model("CurRank", config, tiny_series[:4], cache_tag="indy500")
    store = ArtifactStore(config.artifacts_dir)
    assert len(store) == 2
    assert any(name.endswith("-event-Iowa") for name in store.names())


def test_no_artifacts_dir_means_no_store_io(tmp_path, tiny_series):
    config = ExperimentConfig(ml_max_instances=400)
    common.train_model("CurRank", config, tiny_series[:4])
    assert not (tmp_path / "store").exists()


def test_runner_flag_plumbs_artifacts_dir(tmp_path, monkeypatch):
    captured = {}

    def fake_run_experiment(name, config):
        captured["artifacts_dir"] = config.artifacts_dir

        class Result:
            def to_text(self):
                return "ok"

        return Result()

    monkeypatch.setattr("repro.experiments.runner.run_experiment", fake_run_experiment)
    assert runner_main(["table5", "--artifacts-dir", str(tmp_path / "art")]) == 0
    assert captured["artifacts_dir"] == str(tmp_path / "art")
    assert runner_main(["table5"]) == 0
    assert captured["artifacts_dir"] is None
