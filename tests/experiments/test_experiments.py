"""Tests for the experiment harness (configs, registry, light experiments)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    active_config,
    clear_caches,
    full_config,
    list_experiments,
    quick_config,
    run_experiment,
)
from repro.experiments import common
from repro.experiments.runner import main as runner_main


@pytest.fixture(scope="module")
def tiny_config():
    """A configuration small enough for unit tests."""
    return quick_config().with_overrides(
        events=("Indy500",),
        years_per_event={"Indy500": [2017, 2018, 2019]},
        encoder_length=12,
        epochs=1,
        n_samples=5,
        origin_stride=40,
        max_train_windows=200,
        ml_origin_stride=15,
        ml_max_instances=800,
        rf_estimators=3,
        gbm_estimators=5,
        hidden_dim=8,
    )


@pytest.fixture(autouse=True, scope="module")
def _clean_caches():
    clear_caches()
    yield
    clear_caches()


def test_config_profiles():
    quick = quick_config()
    full = full_config()
    assert quick.profile == "quick" and full.profile == "full"
    assert full.encoder_length == 60 and full.n_samples == 100
    assert quick.encoder_length < full.encoder_length
    override = quick.with_overrides(epochs=3)
    assert override.epochs == 3 and quick.epochs != 3


def test_active_config_respects_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "full")
    assert active_config().profile == "full"
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    assert active_config().profile == "quick"


def test_registry_lists_all_tables_and_figures():
    names = list_experiments()
    assert {f"table{i}" for i in range(1, 9)} <= set(names)
    assert {f"fig{i}" for i in range(1, 13)} <= set(names)
    assert "strategy_sweep" in names
    assert "scenarios" in names
    assert len(names) == 22
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_static_experiments_have_expected_rows(tiny_config):
    t1 = run_experiment("table1", tiny_config)
    assert isinstance(t1, ExperimentResult)
    assert any(row["feature"] == "TrackStatus" for row in t1.rows)
    t3 = run_experiment("table3", tiny_config)
    assert t3.row_for("model", "RankNet-MLP")["pit_model"].startswith("Y")
    t8 = run_experiment("table8", tiny_config)
    assert len(t8.rows) == 3
    f3 = run_experiment("fig3", tiny_config)
    assert len(f3.rows) == 3
    f5 = run_experiment("fig5", tiny_config)
    assert any("Parameters" in str(row["component"]) for row in f5.rows)


def test_dataset_experiments(tiny_config):
    t2 = run_experiment("table2", tiny_config)
    assert [row["event"] for row in t2.rows] == ["Indy500"]
    assert t2.rows[0]["records"] > 1000

    t4 = run_experiment("table4", tiny_config)
    params = {row["parameter"]: row["value"] for row in t4.rows}
    assert params["encoder length"] == 12
    assert params["optimizer"] == "ADAM"

    f1 = run_experiment("fig1", tiny_config)
    assert "winner_rank" in f1.series
    assert len(f1.series["winner_rank"]) > 50

    f4 = run_experiment("fig4", tiny_config)
    kinds = {row["pit_type"] for row in f4.rows}
    assert kinds == {"normal", "caution"}
    assert "normal_stint_cdf" in f4.series

    f6 = run_experiment("fig6", tiny_config)
    assert len(f6.rows) == 3
    for row in f6.rows:
        assert 0.0 <= row["pit_laps_ratio"] <= 1.0
        assert 0.0 <= row["rank_changes_ratio"] <= 1.0


def test_profiling_experiments(tiny_config):
    f10 = run_experiment("fig10", tiny_config, batch_sizes=(32, 128), measure_cpu=False)
    devices = {row["device"] for row in f10.rows}
    assert {"CPU", "GPU", "GPU cuDNN", "VE"} == devices
    f11 = run_experiment("fig11", tiny_config, batch_sizes=(32, 64))
    assert len(f11.rows) == 10
    f12 = run_experiment("fig12", tiny_config, batch_sizes=(32, 64))
    assert len(f12.rows) == 12
    shares = [row["share_pct"] for row in f12.rows if row["batch_size"] == 32]
    assert abs(sum(shares) - 100.0) < 1.0


def test_scenarios_experiment_sweeps_and_crowns_a_champion(tiny_config):
    result = run_experiment("scenarios", tiny_config, replicas=1)
    assert [row["scenario"] for row in result.rows] == ["exp-caution-sweep"] * 3
    calm = result.row_for("point", "caution_hazard_scale=0.0")
    assert calm["mean_caution_laps"] == 0.0
    assert "champion car" in result.notes and "title odds" in result.notes


def test_table5_with_light_models(tiny_config):
    result = run_experiment("table5", tiny_config, models=["CurRank", "ARIMA"])
    assert [row["model"] for row in result.rows] == ["CurRank", "ARIMA"]
    for row in result.rows:
        assert np.isfinite(row["all_mae"])
        assert 0.0 <= row["all_top1acc"] <= 1.0
    text = result.to_text()
    assert "Table V" in text and "CurRank" in text


def test_table6_with_light_models(tiny_config):
    result = run_experiment("table6", tiny_config, models=["CurRank"])
    row = result.rows[0]
    assert row["num_stints"] > 0
    assert np.isfinite(row["mae"])


def test_model_zoo_builders(tiny_config):
    for name in ("CurRank", "ARIMA", "RandomForest", "SVM", "XGBoost",
                 "DeepAR", "RankNet-MLP", "RankNet-Oracle", "RankNet-Joint",
                 "Transformer-MLP", "Transformer-Oracle"):
        model = common.build_model(name, tiny_config)
        assert model is not None
    with pytest.raises(KeyError):
        common.build_model("NotAModel", tiny_config)


def test_train_model_is_cached(tiny_config):
    dataset = common.get_dataset(tiny_config)
    train, val, test = common.split_features(dataset.split("Indy500"), tiny_config)
    a = common.train_model("CurRank", tiny_config, train, cache_tag="x")
    b = common.train_model("CurRank", tiny_config, train, cache_tag="x")
    assert a is b
    c = common.train_model("CurRank", tiny_config, train, cache_tag="y")
    assert c is not a


def test_runner_cli_list_and_static(capsys):
    assert runner_main(["table1", "--list"]) == 0
    out = capsys.readouterr().out
    assert "table5" in out
    assert runner_main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "RankNet-MLP" in out


def test_experiment_result_helpers():
    result = ExperimentResult("T", "title", rows=[{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}])
    assert result.column("a") == [1, 3]
    assert result.row_for("a", 3)["b"] == 4.0
    with pytest.raises(KeyError):
        result.row_for("a", 99)
    assert "title" in result.to_text()
