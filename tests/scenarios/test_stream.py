"""/v1/scenarios over the wire: schema, streaming, and error envelopes."""

import http.client
import json

import pytest

from repro.scenarios import ScenarioEngine, parse_scenario
from repro.serving import ServerError, wire
from repro.serving.client import ForecastClient
from repro.serving.server import ForecastServer, ServerConfig
from repro.serving.wire import WireError

TINY = {
    "scenario": "wire-tiny",
    "kind": "race",
    "races": [{"event": "Indy500", "year": 2018}],
    "points": [{"track_total_laps": 30, "track_num_cars": 6}],
    "replicas": 2,
}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = str(tmp_path_factory.mktemp("scenario-store"))
    config = ServerConfig(store=store, port=0, batch_window_ms=1.0)
    with ForecastServer(config) as running:
        yield running


@pytest.fixture()
def client(server):
    return ForecastClient(port=server.port)


# ----------------------------------------------------------------------
# wire schema
# ----------------------------------------------------------------------
def test_scenario_request_round_trips_and_is_seed_only():
    document = wire.scenario_request_to_wire(TINY, seed=42)
    assert document["schema_version"] == wire.WIRE_SCHEMA_VERSION
    assert document["kind"] == "scenario-request"
    assert document["rng"] == {"seed": 42}
    spec, seed = wire.scenario_request_from_wire(document)
    assert spec.name == "wire-tiny" and seed == 42

    # scenario RNG transport is seed-only: full generator states make no
    # sense when every stream is derived server-side from the one seed
    stateful = dict(document, rng={"state": {"bit_generator": "PCG64"}})
    with pytest.raises(WireError, match="seed.*RNG transport|'seed'"):
        wire.scenario_request_from_wire(stateful)
    with pytest.raises(WireError):
        wire.scenario_request_to_wire(TINY, seed=None)

    bad_spec = dict(document, spec={"scenario": "x", "kind": "weather", "races": []})
    with pytest.raises(WireError) as excinfo:
        wire.scenario_request_from_wire(bad_spec)
    assert excinfo.value.code == "invalid_scenario"


def test_scenario_event_documents_round_trip():
    engine = ScenarioEngine()
    spec = parse_scenario(TINY)
    results, summary = engine.run(spec, seed=7)
    raced = wire.scenario_race_to_wire(results[0], 0, len(results))
    assert raced["kind"] == "scenario-race" and raced["total"] == 2
    assert wire.scenario_race_from_wire(raced) == results[0]
    summarized = wire.scenario_summary_to_wire(summary)
    assert wire.scenario_summary_from_wire(summarized) == summary
    started = wire.scenario_start_to_wire(spec, 7, len(results))
    assert started["scenario_kind"] == "race" and started["races"] == 2


# ----------------------------------------------------------------------
# HTTP streaming
# ----------------------------------------------------------------------
def test_streamed_run_matches_the_in_process_engine(client):
    events = list(client.run_scenario_iter(TINY, seed=2021))
    kinds = [kind for kind, _payload in events]
    assert kinds == ["start", "race", "race", "summary"]

    results, summary = ScenarioEngine().run(parse_scenario(TINY), seed=2021)
    streamed_races = [payload for kind, payload in events if kind == "race"]
    assert [r.to_doc() for r in streamed_races] == [r.to_doc() for r in results]
    assert events[-1][1].to_doc() == summary.to_doc()

    # the blocking helper agrees with the iterator
    blocking_results, blocking_summary = client.run_scenario(TINY, seed=2021)
    assert [r.to_doc() for r in blocking_results] == [r.to_doc() for r in results]
    assert blocking_summary.to_doc() == summary.to_doc()


def test_response_is_chunked_ndjson(server):
    body = json.dumps(wire.scenario_request_to_wire(TINY, seed=1)).encode("utf-8")
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        connection.request(
            "POST", "/v1/scenarios", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        assert response.getheader("Transfer-Encoding") == "chunked"
        lines = [line for line in response.read().splitlines() if line.strip()]
    finally:
        connection.close()
    documents = [json.loads(line) for line in lines]
    assert [d["kind"] for d in documents] == [
        "scenario-start", "scenario-race", "scenario-race", "scenario-summary",
    ]
    assert documents[1]["index"] == 0 and documents[1]["total"] == 2


def test_invalid_scenario_fails_before_the_stream_starts(client):
    with pytest.raises(ServerError) as excinfo:
        list(client.scenario_stream({"scenario": "x"}, seed=0))
    # validation happened before any event: a plain error status, not a
    # 200 stream with a trailing error
    assert excinfo.value.code == "invalid_scenario"
    assert "kind" in str(excinfo.value)

    bad = dict(TINY, kind="weather")
    with pytest.raises(ServerError) as excinfo:
        list(client.scenario_stream(bad, seed=0))
    assert excinfo.value.code == "invalid_scenario" and excinfo.value.status == 400


def test_unknown_model_mid_stream_arrives_as_a_trailing_error(client):
    scored = dict(TINY, forecast={"model": "no-such-model", "origins": [20]})
    events = []
    with pytest.raises(ServerError) as excinfo:
        for event in client.run_scenario_iter(scored, seed=0):
            events.append(event)
    assert excinfo.value.code == "unknown_model"
    # the stream opened (headers were already sent) before the failure
    assert events and events[0][0] == "start"


def test_non_streaming_fallback_returns_the_whole_event_list(server):
    body = wire.scenario_request_to_wire(TINY, seed=2021)
    status, document = server.gateway.handle("POST", "/v1/scenarios", body)
    assert status == 200 and document["kind"] == "scenario-results"
    kinds = [event["kind"] for event in document["events"]]
    assert kinds == ["scenario-start", "scenario-race", "scenario-race", "scenario-summary"]
