"""Scenario spec parsing, validation, and deterministic seed derivation."""

import pytest

from repro.scenarios import (
    POINT_PARAMS,
    SCENARIO_KINDS,
    ScenarioError,
    championship_points,
    derive_rng,
    derive_seed,
    parse_scenario,
)
from repro.scenarios.spec import POINTS_TABLE, point_label


def minimal(**overrides):
    document = {
        "scenario": "demo",
        "kind": "race",
        "races": [{"event": "Indy500", "year": 2018}],
    }
    document.update(overrides)
    return document


# ----------------------------------------------------------------------
# parsing and validation
# ----------------------------------------------------------------------
def test_minimal_race_scenario_parses_to_one_baseline_job():
    spec = parse_scenario(minimal())
    assert spec.name == "demo" and spec.kind == "race"
    assert spec.points == [{}] and spec.replicas == 1 and spec.seed is None
    jobs = spec.jobs()
    assert len(jobs) == 1
    assert jobs[0].label == "Indy500-2018/baseline/r0"


def test_unknown_keys_are_rejected_with_the_known_list():
    with pytest.raises(ScenarioError, match="unknown key.*grid"):
        parse_scenario(minimal(gird={"caution_hazard_scale": [1.0]}))
    with pytest.raises(ScenarioError, match="unknown grid parameter"):
        parse_scenario(minimal(points=[{"caution_hazard": 2.0}]))
    with pytest.raises(ScenarioError, match="race entry has unknown key"):
        parse_scenario(minimal(races=[{"event": "Indy500", "year": 2018, "laps": 3}]))
    with pytest.raises(ScenarioError, match="unknown forecast key"):
        parse_scenario(minimal(forecast={"model": "m", "origins": [20], "samples": 1}))


def test_kind_and_event_validation():
    with pytest.raises(ScenarioError, match="'kind' must be one of"):
        parse_scenario(minimal(kind="weather"))
    assert set(SCENARIO_KINDS) == {"race", "caution", "driver", "track", "pit", "season"}
    with pytest.raises(ScenarioError, match="unknown event"):
        parse_scenario(minimal(races=[{"event": "Monza", "year": 2018}]))
    with pytest.raises(ScenarioError, match="year must be an integer"):
        parse_scenario(minimal(races=[{"event": "Indy500", "year": "2018"}]))


def test_kind_requires_a_parameter_of_its_family():
    with pytest.raises(ScenarioError, match="requires at least one of its parameters"):
        parse_scenario(minimal(kind="caution"))
    # any point carrying a family parameter satisfies the requirement
    spec = parse_scenario(
        minimal(kind="caution", points=[{"label": "base"}, {"caution_hazard_scale": 2.0}])
    )
    assert len(spec.points) == 2
    for kind, family in POINT_PARAMS.items():
        spec = parse_scenario(minimal(kind=kind, points=[{family[0]: 1}]))
        assert spec.kind == kind


def test_grid_expands_cartesian_over_sorted_axes():
    spec = parse_scenario(
        minimal(
            kind="caution",
            grid={
                "caution_mean_duration": [4, 6],
                "caution_hazard_scale": [0.5, 1.0, 2.0],
            },
        )
    )
    assert len(spec.points) == 6
    # axes iterate in sorted-key order: hazard_scale is the outer axis
    assert spec.points[0] == {"caution_hazard_scale": 0.5, "caution_mean_duration": 4}
    assert spec.points[1] == {"caution_hazard_scale": 0.5, "caution_mean_duration": 6}
    assert spec.points[-1] == {"caution_hazard_scale": 2.0, "caution_mean_duration": 6}
    with pytest.raises(ScenarioError, match="either 'grid' or 'points'"):
        parse_scenario(minimal(grid={"caution_hazard_scale": [1.0]}, points=[{}]))


def test_jobs_cross_races_points_and_replicas():
    spec = parse_scenario(
        minimal(
            kind="caution",
            races=[{"event": "Indy500", "year": 2018}, {"event": "Texas", "year": 2019}],
            grid={"caution_hazard_scale": [0.5, 2.0]},
            replicas=3,
        )
    )
    jobs = spec.jobs()
    assert len(jobs) == 2 * 2 * 3
    assert jobs[0].label == "Indy500-2018/caution_hazard_scale=0.5/r0"
    assert len({job.label for job in jobs}) == len(jobs)


def test_replicas_and_seed_validation():
    with pytest.raises(ScenarioError, match="'replicas' must be a positive integer"):
        parse_scenario(minimal(replicas=0))
    with pytest.raises(ScenarioError, match="'replicas' must be a positive integer"):
        parse_scenario(minimal(replicas=True))
    with pytest.raises(ScenarioError, match="'seed' must be an integer"):
        parse_scenario(minimal(seed="2021"))
    assert parse_scenario(minimal(seed=7)).seed == 7


def test_forecast_block_origins_forms():
    ranged = parse_scenario(
        minimal(forecast={"model": "m", "origins": {"start": 20, "stop": 40, "stride": 10}})
    )
    assert ranged.forecast.origins == (20, 30, 40)
    listed = parse_scenario(minimal(forecast={"model": "m", "origins": [25, 30]}))
    assert listed.forecast.origins == (25, 30)
    assert listed.forecast.horizon == 2 and listed.forecast.n_samples == 20
    with pytest.raises(ScenarioError, match="stride >= 1"):
        parse_scenario(minimal(forecast={"model": "m", "origins": {"start": 5, "stop": 1}}))
    with pytest.raises(ScenarioError, match="needs 'origins'"):
        parse_scenario(minimal(forecast={"model": "m"}))
    with pytest.raises(ScenarioError, match="needs a 'model'"):
        parse_scenario(minimal(forecast={"origins": [20]}))


def test_point_label_forms():
    assert point_label({}) == "baseline"
    assert point_label({"label": "double"}) == "double"
    assert (
        point_label({"caution_mean_duration": 6, "caution_hazard_scale": 2.0})
        == "caution_hazard_scale=2.0,caution_mean_duration=6"
    )


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def test_derive_seed_is_pinned_across_processes():
    # the cross-process reproducibility contract: this exact value is what
    # any build must derive for this path (sha256, not Python's hash())
    assert derive_seed(2021, "demo", "Indy500-2018/baseline/r0", "race") == (
        17062189213908866881
    )
    assert derive_seed(0) == 6912158355717386040


def test_derive_seed_separates_paths_and_feeds_a_generator():
    a = derive_seed(1, "s", "job", "race")
    assert a == derive_seed(1, "s", "job", "race")
    assert a != derive_seed(2, "s", "job", "race")
    assert a != derive_seed(1, "s", "job", "field")
    # concatenation cannot collide across part boundaries
    assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")
    assert derive_rng(1, "s").integers(1 << 30) == derive_rng(1, "s").integers(1 << 30)


# ----------------------------------------------------------------------
# championship points
# ----------------------------------------------------------------------
def test_championship_points_follow_the_table_with_a_tail():
    order = list(range(1, 31))  # 30 classified cars, table holds 25
    points = championship_points(order)
    assert points[1] == 50 and points[2] == 40 and points[3] == 35
    assert points[25] == POINTS_TABLE[-1]
    assert points[30] == POINTS_TABLE[-1]  # past the table: tail value
    assert len(points) == 30
