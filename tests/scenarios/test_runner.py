"""The repro-scenarios CLI: workload loading, validation, result files."""

import json

import pytest
import yaml

from repro.scenarios.runner import load_workload, main
from repro.scenarios.spec import ScenarioError

TINY = {
    "scenario": "tiny",
    "kind": "race",
    "races": [{"event": "Indy500", "year": 2018}],
    "points": [{"track_total_laps": 30, "track_num_cars": 6}],
}


def write_yaml(path, document):
    path.write_text(yaml.safe_dump(document), encoding="utf-8")
    return str(path)


@pytest.fixture()
def tiny_file(tmp_path):
    return write_yaml(tmp_path / "tiny.yaml", TINY)


@pytest.fixture()
def matrix_file(tmp_path, tiny_file):
    other = dict(TINY, scenario="tiny-b", replicas=2)
    write_yaml(tmp_path / "other.yaml", other)
    return write_yaml(
        tmp_path / "matrix.yaml",
        {
            "workload": "test matrix",
            "defaults": {"seed": 77, "replicas": 1},
            "scenarios": ["tiny.yaml", "other.yaml"],
        },
    )


# ----------------------------------------------------------------------
# workload loading
# ----------------------------------------------------------------------
def test_single_scenario_file_loads_directly(tiny_file):
    [(path, document, spec)] = load_workload(tiny_file)
    assert path == tiny_file
    assert spec.name == "tiny" and document["scenario"] == "tiny"


def test_matrix_defaults_merge_without_overriding(matrix_file):
    specs = load_workload(matrix_file)
    assert [spec.name for _p, _d, spec in specs] == ["tiny", "tiny-b"]
    # defaults fill missing keys; explicit spec values win
    assert specs[0][2].seed == 77 and specs[0][2].replicas == 1
    assert specs[1][2].seed == 77 and specs[1][2].replicas == 2
    # the merged raw document is what gateway mode ships over the wire
    assert specs[0][1]["seed"] == 77


def test_matrix_rejects_unknown_keys(tmp_path, tiny_file):
    path = write_yaml(
        tmp_path / "bad.yaml", {"scenarios": ["tiny.yaml"], "defaults": {"epochs": 3}}
    )
    with pytest.raises(ScenarioError, match="unknown defaults key"):
        load_workload(path)
    path = write_yaml(tmp_path / "bad2.yaml", {"scenarios": ["tiny.yaml"], "jobs": 4})
    with pytest.raises(ScenarioError, match="unknown matrix key"):
        load_workload(path)
    path = write_yaml(tmp_path / "bad3.yaml", {"workload": "empty"})
    with pytest.raises(ScenarioError, match="expected a scenario document"):
        load_workload(path)


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
def test_validate_prints_one_line_per_spec(matrix_file, capsys):
    assert main([matrix_file, "--validate"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert "race, 1 races, seed 77" in lines[0]
    assert "race, 2 races, seed 77" in lines[1]


def test_cli_seed_overrides_every_scenario(matrix_file, capsys):
    assert main([matrix_file, "--validate", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert out.count("seed 5") == 2 and "seed 77" not in out


def test_run_writes_text_and_json_results(tiny_file, tmp_path, capsys):
    results = tmp_path / "results"
    assert main([tiny_file, "--results", str(results), "--quiet"]) == 0
    text = (results / "tiny.txt").read_text()
    assert "Scenario 'tiny'" in text and "Per-grid-point summary" in text
    document = json.loads((results / "tiny.json").read_text())
    assert document["scenario"] == "tiny" and document["kind"] == "race"
    assert len(document["races"]) == 1
    assert document["races"][0]["laps"] == 30
    assert document["summary"]["rows"][0]["races"] == 1


def test_error_paths_exit_2(tmp_path, tiny_file, capsys):
    assert main([str(tmp_path / "missing.yaml"), "--validate"]) == 2
    assert "repro-scenarios:" in capsys.readouterr().err

    bad = write_yaml(tmp_path / "bad.yaml", dict(TINY, kind="weather"))
    assert main([bad, "--validate"]) == 2
    assert "'kind' must be one of" in capsys.readouterr().err

    # duplicate names across the workload are ambiguous: results collide
    assert main([tiny_file, tiny_file, "--validate"]) == 2
    assert "duplicate scenario names" in capsys.readouterr().err

    # forecast scoring needs a store in in-process mode
    scored = write_yaml(
        tmp_path / "scored.yaml",
        dict(TINY, scenario="scored", forecast={"model": "m", "origins": [20]}),
    )
    assert main([scored, "--results", str(tmp_path / "r")]) == 2
    assert "pass --store" in capsys.readouterr().err

    assert main([tiny_file, "--gateway", "nonsense"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err
