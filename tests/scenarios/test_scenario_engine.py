"""Scenario engine: determinism, perturbations, documents, championships."""

import pytest

from repro.scenarios import (
    ScenarioEngine,
    ScenarioError,
    ScenarioRaceResult,
    ScenarioSummary,
    finishing_order,
    parse_scenario,
)
from repro.simulation import RaceSimulator, track_for_year


def spec_for(**overrides):
    document = {
        "scenario": "engine-test",
        "kind": "race",
        "races": [{"event": "Indy500", "year": 2018}],
        # short races keep the suite fast; the full track is 200 laps
        "points": [{"track_total_laps": 40, "track_num_cars": 8}],
    }
    document.update(overrides)
    return parse_scenario(document)


@pytest.fixture(scope="module")
def engine():
    return ScenarioEngine()


def test_runs_are_deterministic_under_a_shared_seed(engine):
    spec = spec_for(replicas=2)
    first_results, first_summary = engine.run(spec, seed=11)
    second_results, second_summary = engine.run(spec, seed=11)
    assert [r.to_doc() for r in first_results] == [r.to_doc() for r in second_results]
    assert first_summary.to_doc() == second_summary.to_doc()
    # a different request seed produces a different race
    other_results, _ = engine.run(spec, seed=12)
    assert [r.to_doc() for r in first_results] != [r.to_doc() for r in other_results]


def test_replicas_differ_but_share_the_grid_point(engine):
    spec = spec_for(replicas=2)
    results, summary = engine.run(spec, seed=3)
    assert len(results) == 2
    assert results[0].label != results[1].label
    assert results[0].point_label == results[1].point_label
    assert summary.rows[0]["races"] == 2


def test_track_overrides_reshape_the_race(engine):
    spec = spec_for(
        kind="track",
        points=[{"track_total_laps": 30, "track_num_cars": 6}],
    )
    (result,), _ = engine.run(spec, seed=5)
    assert result.laps == 30
    assert result.starters == 6
    assert 1 <= result.winner <= 6


def test_zero_caution_hazard_means_zero_caution_laps(engine):
    spec = spec_for(
        kind="caution",
        points=[
            {"caution_hazard_scale": 0.0, "track_total_laps": 40, "track_num_cars": 8},
            {"caution_hazard_scale": 5.0, "track_total_laps": 40, "track_num_cars": 8},
        ],
        replicas=2,
    )
    results, summary = engine.run(spec, seed=9)
    calm = [r for r in results if r.params["caution_hazard_scale"] == 0.0]
    stormy = [r for r in results if r.params["caution_hazard_scale"] == 5.0]
    assert all(r.caution_laps == 0 for r in calm)
    assert sum(r.caution_laps for r in stormy) > 0
    by_point = {row["point"]: row for row in summary.rows}
    assert len(by_point) == 2


def test_race_result_documents_round_trip(engine):
    spec = spec_for()
    (result,), summary = engine.run(spec, seed=21)
    document = result.to_doc()
    assert all(isinstance(car, str) for car in document["points"])
    restored = ScenarioRaceResult.from_doc(document)
    assert restored == result
    assert ScenarioSummary.from_doc(summary.to_doc()) == summary


def test_finishing_order_classifies_every_starter_once(engine):
    track = track_for_year("Indy500", 2018)
    from dataclasses import replace

    race = RaceSimulator(
        replace(track, total_laps=40, num_cars=10), event="Indy500", year=2018, seed=4
    ).run()
    order = finishing_order(race)
    assert sorted(order) == sorted(race.car_ids())
    # the classification winner is the race winner
    assert order[0] == race.winner()


def test_season_kind_adds_standings_and_title_odds(engine):
    spec = spec_for(
        kind="season",
        races=[
            {"event": "Indy500", "year": 2018},
            {"event": "Texas", "year": 2018},
        ],
        replicas=3,
    )
    results, summary = engine.run(spec, seed=2021)
    assert len(results) == 2 * 3
    assert summary.standings and summary.champion_odds
    assert abs(sum(summary.champion_odds.values()) - 1.0) < 1e-9
    leader = summary.standings[0]
    assert leader["position"] == 1
    assert leader["mean_points"] >= summary.standings[-1]["mean_points"]
    # every race awards the winner the full 50 points
    for result in results:
        assert result.points[result.winner] == 50
        assert result.podium[0] == result.winner


def test_forecast_scenario_without_a_backend_refuses(engine):
    spec = spec_for(forecast={"model": "some-model", "origins": [20]})
    with pytest.raises(ScenarioError, match="no forecast backend"):
        engine.run(spec, seed=0)
