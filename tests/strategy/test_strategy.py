"""Tests for the pit-strategy optimisation module and fine-tuning support."""

from dataclasses import replace

import numpy as np
import pytest

from repro.data import ALL_COVARIATES, build_race_features
from repro.models import DeepARForecaster, RankNetForecaster
from repro.simulation import RaceSimulator, track_for_year
from repro.strategy import (
    PitStrategyOptimizer,
    build_strategy_plan,
    candidate_single_stop_plans,
)


@pytest.fixture(scope="module")
def data():
    track = replace(track_for_year("Indy500", 2018), total_laps=100, num_cars=14)
    train_races = [
        RaceSimulator(track, event="Indy500", year=2016 + i, seed=70 + i).run() for i in range(2)
    ]
    test_race = RaceSimulator(track, event="Indy500", year=2019, seed=77).run()
    train = [s for race in train_races for s in build_race_features(race)]
    test = build_race_features(test_race)
    return train, test


@pytest.fixture(scope="module")
def fitted_ranknet(data):
    train, _ = data
    model = RankNetForecaster(
        variant="oracle", encoder_length=20, decoder_length=2, hidden_dim=16,
        epochs=6, lr=3e-3, max_train_windows=1000, seed=8,
    )
    model.fit(train)
    return model


# ----------------------------------------------------------------------
# strategy plans
# ----------------------------------------------------------------------
def test_build_strategy_plan_places_pits_and_resets_age(data):
    _, test = data
    series = test[0]
    plan = build_strategy_plan(series, origin=40, horizon=12, pit_offsets=[4, 10])
    assert plan.shape == (12, len(ALL_COVARIATES))
    lap_col = ALL_COVARIATES.index("lap_status")
    age_col = ALL_COVARIATES.index("pit_age")
    track_col = ALL_COVARIATES.index("track_status")
    np.testing.assert_array_equal(np.where(plan[:, lap_col] > 0.5)[0], [3, 9])
    assert plan[3, age_col] == 0.0 and plan[9, age_col] == 0.0
    assert plan[4, age_col] == 1.0
    np.testing.assert_allclose(plan[:, track_col], 0.0)


def test_build_strategy_plan_ignores_out_of_range_offsets(data):
    _, test = data
    plan = build_strategy_plan(test[0], origin=40, horizon=5, pit_offsets=[0, 9, 3])
    lap_col = ALL_COVARIATES.index("lap_status")
    assert plan[:, lap_col].sum() == 1.0


def test_build_strategy_plan_validation(data):
    _, test = data
    with pytest.raises(IndexError):
        build_strategy_plan(test[0], origin=10_000, horizon=5, pit_offsets=[1])
    with pytest.raises(ValueError):
        build_strategy_plan(test[0], origin=10, horizon=0, pit_offsets=[1])


def test_candidate_single_stop_plans_enumeration(data):
    _, test = data
    candidates = candidate_single_stop_plans(test[0], origin=30, horizon=10, earliest=2, latest=8, step=2)
    assert [c["pit_in_laps"] for c in candidates] == [2, 4, 6, 8]
    for c in candidates:
        assert c["plan"].shape == (10, len(ALL_COVARIATES))


# ----------------------------------------------------------------------
# optimizer
# ----------------------------------------------------------------------
def test_strategy_optimizer_rejects_unsuitable_forecasters(data):
    train, _ = data
    with pytest.raises(ValueError):
        PitStrategyOptimizer(
            RankNetForecaster(variant="oracle", encoder_length=10, epochs=1, max_train_windows=50)
        )
    deepar = DeepARForecaster(encoder_length=10, decoder_length=2, hidden_dim=8,
                              epochs=1, max_train_windows=100, seed=1)
    deepar.fit(train[:4])
    with pytest.raises(ValueError):
        PitStrategyOptimizer(deepar)
    with pytest.raises(TypeError):
        PitStrategyOptimizer(object())  # type: ignore[arg-type]


def test_strategy_optimizer_evaluates_candidates(data, fitted_ranknet):
    _, test = data
    series = test[2]
    optimizer = PitStrategyOptimizer(fitted_ranknet, n_samples=25)
    outcomes = optimizer.evaluate(series, origin=45, horizon=10, earliest=2, latest=8, step=3)
    assert [o.pit_in_laps for o in outcomes] == [2, 5, 8]
    for o in outcomes:
        assert 1.0 <= o.expected_final_rank <= 33.0
        assert 0.0 <= o.p_gain <= 1.0 and 0.0 <= o.p_lose <= 1.0
        assert o.rank_samples_std >= 0.0
        assert set(o.as_row()) == {
            "pit_in_laps", "expected_final_rank", "median_final_rank",
            "p_gain", "p_lose", "uncertainty",
        }


def test_strategy_optimizer_best_is_minimum_expected_rank(data, fitted_ranknet):
    _, test = data
    optimizer = PitStrategyOptimizer(fitted_ranknet, n_samples=20)
    outcomes = optimizer.evaluate(test[1], origin=40, horizon=8, step=2)
    best = optimizer.best(test[1], origin=40, horizon=8, step=2)
    assert best.expected_final_rank == pytest.approx(
        min(o.expected_final_rank for o in outcomes), abs=0.75
    )


def test_strategy_plans_change_the_forecast(data, fitted_ranknet):
    """Different pit plans must actually produce different forecasts."""
    _, test = data
    series = test[2]
    optimizer = PitStrategyOptimizer(fitted_ranknet, n_samples=40)
    early = optimizer.evaluate_plan(series, 45, build_strategy_plan(series, 45, 10, [1]))
    late = optimizer.evaluate_plan(series, 45, build_strategy_plan(series, 45, 10, [10]))
    assert early.shape == late.shape == (40, 10)
    assert not np.allclose(early.mean(axis=0), late.mean(axis=0))


# ----------------------------------------------------------------------
# rolling sweeps
# ----------------------------------------------------------------------
def test_sweep_returns_one_point_per_origin(data, fitted_ranknet):
    _, test = data
    series = test[2]
    optimizer = PitStrategyOptimizer(fitted_ranknet, n_samples=10)
    origins = [44, 45, 46, 47]
    points = optimizer.sweep(series, origins, horizon=8, earliest=2, step=3)
    assert [p.origin for p in points] == origins
    for point in points:
        assert point.current_rank == float(series.rank[point.origin])
        assert [o.pit_in_laps for o in point.outcomes] == [2, 5, 8]
        best = point.best
        assert best.expected_final_rank == min(
            o.expected_final_rank for o in point.outcomes
        )


def test_sweep_shares_warmups_and_carries_states(data, fitted_ranknet):
    _, test = data
    series = test[1]
    optimizer = PitStrategyOptimizer(fitted_ranknet, n_samples=8)
    engine = fitted_ranknet.fleet_engine("carry")
    engine.reset_cache()
    before = engine.stats
    points = optimizer.sweep(series, range(40, 44), horizon=6, step=2)
    stats = engine.stats
    # 4 origins x 3 candidates: one unique warm-up per origin, the rest shared
    assert stats["warmup_unique"] - before["warmup_unique"] == 4
    assert stats["warmup_shared"] - before["warmup_shared"] == 8
    # consecutive origins advance the carried state instead of replaying
    assert stats["cache_carries"] - before["cache_carries"] == 3
    assert len(points) == 4


def test_sweep_with_unsorted_duplicate_origins(data, fitted_ranknet):
    _, test = data
    optimizer = PitStrategyOptimizer(fitted_ranknet, n_samples=6)
    points = optimizer.sweep(test[0], [46, 44, 46], horizon=6, step=3)
    assert [p.origin for p in points] == [44, 46]


def test_field_size_derived_from_forecaster(data, fitted_ranknet):
    # the fixture trains on a 14-car field; the optimizer picks that up
    optimizer = PitStrategyOptimizer(fitted_ranknet, n_samples=5)
    assert optimizer.field_size == fitted_ranknet.field_size == 14
    explicit = PitStrategyOptimizer(fitted_ranknet, n_samples=5, field_size=20)
    assert explicit.field_size == 20
    _, test = data
    samples = optimizer.evaluate_plan(
        test[0], 40, build_strategy_plan(test[0], 40, 6, [2])
    )
    assert samples.max() <= 14.0


# ----------------------------------------------------------------------
# fine-tuning (transfer learning)
# ----------------------------------------------------------------------
def test_fine_tune_continues_training_and_keeps_forecasting(data, fitted_ranknet):
    train, test = data
    before = fitted_ranknet.model.state_dict()
    fitted_ranknet.fine_tune(train[:6], epochs=2, lr=1e-3)
    after = fitted_ranknet.model.state_dict()
    changed = any(not np.allclose(before[k], after[k]) for k in before)
    assert changed
    fc = fitted_ranknet.forecast(test[0], origin=40, horizon=2, n_samples=10)
    assert fc.samples.shape == (10, 2)


def test_fine_tune_requires_fitted_model():
    model = RankNetForecaster(variant="oracle", encoder_length=10, epochs=1, max_train_windows=50)
    with pytest.raises(RuntimeError):
        model.fine_tune([], epochs=1)
