"""Telemetry accumulator: ingest idempotency, fingerprints, window splits."""

import pytest

from repro.learning import TelemetryAccumulator
from repro.learning.windows import records_from_lap_log
from repro.serving.wire import lap_record_to_wire


def test_ingest_is_idempotent(tmp_path, learn_races):
    acc = TelemetryAccumulator(str(tmp_path / "acc"))
    first = acc.add_race(learn_races[0])
    again = acc.add_race(learn_races[0])
    assert first["new"] is True
    assert again["new"] is False
    assert again["key"] == first["key"]
    assert len(acc) == 1


def test_distinct_runnings_of_the_same_event_do_not_collide(tmp_path, learn_races):
    acc = TelemetryAccumulator(str(tmp_path / "acc"))
    keys = {acc.add_race(race)["key"] for race in learn_races}
    # same event/year, different seeds: the content fingerprint in the key
    # keeps the three runnings distinct
    assert len(keys) == 3


def test_window_split_and_content_derived_id(accumulator, window):
    assert len(window.train_keys) == 2 and len(window.holdout_keys) == 1
    assert window.holdout_keys[0] == accumulator.race_keys()[-1]
    assert window.window_id == f"win-{window.fingerprint}"
    # rebuilding the same split returns the same content-derived id
    assert accumulator.build_window(holdout=1).window_id == window.window_id


def test_window_reloads_identically_in_a_fresh_instance(accumulator, window):
    fresh = TelemetryAccumulator(accumulator.root)
    reloaded = fresh.window(window.window_id)
    assert reloaded.train_keys == window.train_keys
    assert reloaded.holdout_keys == window.holdout_keys
    assert reloaded.fingerprint == window.fingerprint
    assert len(reloaded.holdout_races()) == 1
    assert reloaded.train_series()  # races round-trip through disk


def test_window_needs_more_races_than_the_holdout(tmp_path, learn_races):
    acc = TelemetryAccumulator(str(tmp_path / "acc"))
    acc.add_race(learn_races[0])
    with pytest.raises(ValueError, match="need more than"):
        acc.build_window(holdout=1)
    with pytest.raises(ValueError, match="holdout"):
        acc.build_window(holdout=0)


def test_unknown_window_and_race_keys_raise(accumulator):
    with pytest.raises(KeyError):
        accumulator.window("win-nope")
    with pytest.raises(KeyError):
        accumulator.race("nope")


def test_session_lap_log_drains_to_identical_content(tmp_path, learn_races):
    """Wire-form lap records reconstruct the exact telemetry content.

    A session drained over the wire (no ``lap``/``elapsed_time`` fields on
    the records) must dedup against the same race ingested directly — the
    reconstruction is content-exact, not merely approximate.
    """
    race = learn_races[0]
    lap_log = [
        (lap, [lap_record_to_wire(record) for record in records])
        for lap, records in race.iter_laps()
    ]
    records = records_from_lap_log(lap_log)
    assert len(records) == len(race)

    acc = TelemetryAccumulator(str(tmp_path / "acc"))
    direct = acc.add_race(race)
    drained = acc.add_session(
        lap_log, event=race.event, year=race.year, track=race.track
    )
    assert drained["fingerprint"] == direct["fingerprint"]
    assert drained["key"] == direct["key"]
    assert drained["new"] is False
    assert len(acc) == 1


def test_session_drain_without_a_catalogued_track_gets_a_generic_spec(
    tmp_path, learn_races
):
    race = learn_races[1]
    lap_log = list(race.iter_laps())
    acc = TelemetryAccumulator(str(tmp_path / "acc"))
    entry = acc.add_session(lap_log, event="Backyard-Oval", year=1999)
    assert entry["new"] is True
    assert entry["event"] == "Backyard-Oval"
    assert entry["cars"] == 8
