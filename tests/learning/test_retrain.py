"""Retraining jobs: state journal, guards, and kill+resume bit-exactness."""

import pytest

from repro.artifacts import ArtifactNotFoundError, ArtifactStore
from repro.learning import RetrainJob
from repro.learning.retrain import make_forecaster

TINY = {
    "encoder_length": 12,
    "decoder_length": 2,
    "hidden_dim": 8,
    "num_layers": 1,
    "epochs": 2,
    "batch_size": 32,
    "max_train_windows": 120,
    "seed": 6,
}


def test_make_forecaster_resolves_cli_family_names():
    assert type(make_forecaster("deepar", TINY)).__name__ == "DeepARForecaster"
    assert make_forecaster("ranknet-oracle", {"seed": 1}).variant == "oracle"
    assert make_forecaster("transformer-mlp", {"seed": 1}).variant == "mlp"
    with pytest.raises(ValueError, match="unknown forecaster family"):
        make_forecaster("prophet")


def test_resume_requires_a_job_dir(tmp_path, accumulator, window):
    with pytest.raises(ValueError, match="job_dir"):
        RetrainJob(
            ArtifactStore(str(tmp_path / "store")),
            accumulator,
            window.window_id,
            "cand",
            resume=True,
        )


def test_interrupted_then_resumed_job_is_bit_exact(tmp_path, accumulator, window):
    """The resume gate: kill after one epoch, resume, compare manifests.

    The interrupted-then-resumed candidate and an uninterrupted one must
    produce byte-identical artifacts — same manifest ``sha256`` — because
    the trainer checkpoint restores weights, optimizer moments and the
    data-order RNG in place.
    """
    store = ArtifactStore(str(tmp_path / "store"))
    job_dir = str(tmp_path / "job-a")

    truncated_job = RetrainJob(
        store, accumulator, window.window_id, "cand-a",
        family="deepar", config=TINY, job_dir=job_dir,
    )
    truncated = truncated_job.run(stop_after_epochs=1)
    assert truncated["status"] == "interrupted"
    assert "sha256" not in truncated
    assert truncated_job.state()["status"] == "interrupted"
    with pytest.raises(ArtifactNotFoundError):
        store.load_model("cand-a")  # a truncated job writes no artifact

    resumed_job = RetrainJob(
        store, accumulator, window.window_id, "cand-a",
        family="deepar", config=TINY, job_dir=job_dir, resume=True,
    )
    resumed = resumed_job.run()
    assert resumed["status"] == "completed"
    assert resumed["data_fingerprint"] == window.fingerprint
    assert resumed_job.state()["status"] == "completed"

    uninterrupted = RetrainJob(
        store, accumulator, window.window_id, "cand-b",
        family="deepar", config=TINY, job_dir=str(tmp_path / "job-b"),
    ).run()
    assert uninterrupted["status"] == "completed"
    assert resumed["sha256"] == uninterrupted["sha256"]

    # the candidate is usable straight from the store, and its provenance
    # points back at the window
    assert store.load_model("cand-a") is not None
    assert store.entry("cand-a")["data_fingerprint"] == window.fingerprint


def test_fine_tune_jobs_only_accept_an_epoch_override(tmp_path, accumulator, window):
    store = ArtifactStore(str(tmp_path / "store"))
    RetrainJob(
        store, accumulator, window.window_id, "base",
        family="deepar", config=TINY, job_dir=str(tmp_path / "job"),
    ).run()
    with pytest.raises(ValueError, match="only 'epochs'"):
        RetrainJob(
            store, accumulator, window.window_id, "tuned",
            base="base", config={"hidden_dim": 4},
        ).run()
    tuned = RetrainJob(
        store, accumulator, window.window_id, "tuned",
        base="base", config={"epochs": 1},
    ).run()
    assert tuned["status"] == "completed"
    assert tuned["sha256"] != store.entry("base")["sha256"]
