"""Shared fixtures for the continuous-learning subsystem tests."""

from dataclasses import replace

import pytest

from repro.learning import TelemetryAccumulator
from repro.simulation import RaceSimulator, track_for_year


@pytest.fixture(scope="session")
def learn_races():
    track = replace(track_for_year("Indy500", 2018), total_laps=45, num_cars=8)
    return [
        RaceSimulator(track, event="Indy500", year=2019, seed=seed).run()
        for seed in (3, 4, 5)
    ]


@pytest.fixture(scope="session")
def accumulator(tmp_path_factory, learn_races):
    acc = TelemetryAccumulator(str(tmp_path_factory.mktemp("learn-acc")))
    for race in learn_races:
        acc.add_race(race, source="test")
    return acc


@pytest.fixture(scope="session")
def window(accumulator):
    return accumulator.build_window(holdout=1)
