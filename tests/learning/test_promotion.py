"""Catalog aliases and the journaled champion/challenger promotion cycle."""

import pytest

from repro.artifacts import (
    ArtifactAliasError,
    ArtifactNotFoundError,
    ArtifactStore,
)
from repro.data import build_race_features
from repro.learning import PromotionManager
from repro.models import ArimaForecaster


@pytest.fixture
def store(tmp_path, learn_races):
    store = ArtifactStore(str(tmp_path / "store"))
    series = build_race_features(learn_races[0])
    store.save_model("champ", ArimaForecaster(seed=1).fit(series[:3]))
    store.save_model("cand", ArimaForecaster(seed=2).fit(series[:3]))
    return store


# ----------------------------------------------------------------------
# alias layer (ArtifactStore)
# ----------------------------------------------------------------------
def test_alias_round_trip_and_resolution(store):
    entry = store.set_alias("champion", "champ")
    assert entry["target"] == "champ"
    assert store.aliases() == {"champion": "champ"}
    assert store.is_alias("champion") and not store.is_alias("champ")
    assert store.resolve("champion") == "champ"
    assert store.resolve("champ") == "champ"  # artifact names pass through
    assert store.resolve("unknown") == "unknown"  # unknown names untouched
    assert store.aliases_for("champ") == ["champion"]
    # loading through the alias loads the target artifact
    assert store.load_model("champion") is not None


def test_alias_guards(store):
    with pytest.raises(ArtifactNotFoundError):
        store.set_alias("champion", "no-such-model")
    with pytest.raises(ArtifactAliasError, match="shadow"):
        store.set_alias("champ", "cand")  # may not shadow an artifact
    store.set_alias("champion", "champ")
    with pytest.raises(ArtifactAliasError):
        store.set_alias("champion2", "champion")  # no alias chains
    with pytest.raises(ArtifactAliasError):
        store.save_model("champion", store.load_model("cand"))  # name is taken


def test_delete_refuses_aliased_targets(store):
    store.set_alias("champion", "champ")
    with pytest.raises(ArtifactAliasError):
        store.delete("champion")  # aliases are not deletable artifacts
    with pytest.raises(ArtifactAliasError, match="champion"):
        store.delete("champ")  # still referenced by the alias
    store.delete_alias("champion")
    store.delete("champ")
    assert "champ" not in store


def test_alias_changes_are_visible_across_instances(store):
    store.set_alias("champion", "champ")
    other = ArtifactStore(store.root)
    assert other.resolve("champion") == "champ"
    # a promotion in one process is picked up by the other via the
    # aliases-file mtime, without re-opening the store
    import os
    import time

    store.set_alias("champion", "cand")
    future = time.time() + 2
    os.utime(store.aliases_path, (future, future))
    assert other.resolve("champion") == "cand"


# ----------------------------------------------------------------------
# unload guards (ForecastService)
# ----------------------------------------------------------------------
def test_unloading_an_aliased_model_is_a_structured_error(store):
    from repro.serving import ForecastService

    service = ForecastService(store)
    PromotionManager(store).promote("champion", "champ")
    handle = service.load("champion")
    assert handle.name == "champ"  # cached under the resolved target
    with pytest.raises(ArtifactAliasError):
        service.unload("champion")  # an alias is not an unloadable model
    with pytest.raises(ArtifactAliasError, match="champion"):
        service.unload("champ")  # the target is pinned by the alias
    # re-pointing the alias frees the previous target
    PromotionManager(store).promote("champion", "cand")
    assert service.unload("champ") is True


# ----------------------------------------------------------------------
# promotion manager
# ----------------------------------------------------------------------
def test_promote_rollback_cycle_is_journaled(store):
    manager = PromotionManager(store)
    first = manager.promote("champion", "champ", note="bootstrap")
    assert first["previous"] is None and first["target"] == "champ"

    second = manager.promote("champion", "cand", note="shadow winner")
    assert second["previous"] == "champ"
    assert store.resolve("champion") == "cand"

    rolled = manager.rollback("champion")
    assert rolled["action"] == "rollback"
    assert rolled["target"] == "champ" and rolled["previous"] == "cand"
    assert store.resolve("champion") == "champ"

    actions = [record["action"] for record in manager.history("champion")]
    assert actions == ["promote", "promote", "rollback"]
    # the journal survives a fresh manager on the same store
    assert len(PromotionManager(store.root).history("champion")) == 3


def test_promotion_guards(store):
    manager = PromotionManager(store)
    with pytest.raises(ValueError, match="no journaled promotions"):
        manager.rollback("champion")
    manager.promote("champion", "champ")
    with pytest.raises(ValueError, match="nothing to promote"):
        manager.promote("champion", "champ")  # no-op flip refused
    with pytest.raises(ValueError, match="no previous champion"):
        manager.rollback("champion")  # nothing before the first promotion
    with pytest.raises(ArtifactNotFoundError):
        manager.promote("champion", "ghost")  # target must be registered
    # the failed promotion was not journaled
    assert len(manager.history("champion")) == 1
