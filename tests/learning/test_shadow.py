"""Shadow evaluation: deterministic scoring, seed derivation, guards."""

import pytest

from repro.artifacts import ArtifactStore
from repro.learning import ShadowEvaluator
from repro.learning.shadow import ShadowReport, derive_task_seed
from repro.models import DeepARForecaster

TINY = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=120,
)


@pytest.fixture(scope="module")
def shadow_store(tmp_path_factory, window):
    store = ArtifactStore(str(tmp_path_factory.mktemp("shadow-store")))
    series = window.train_series()
    store.save_model("champ", DeepARForecaster(seed=5, **TINY).fit(series))
    store.save_model("cand", DeepARForecaster(seed=6, **TINY).fit(series))
    store.set_alias("champion", "champ")
    return store


def test_task_seeds_are_stable_and_order_independent():
    seed = derive_task_seed(7, "Indy500-2019", 3, 20)
    assert seed == derive_task_seed(7, "Indy500-2019", 3, 20)
    assert seed != derive_task_seed(7, "Indy500-2019", 3, 21)
    assert seed != derive_task_seed(7, "Indy500-2019", 4, 20)
    assert seed != derive_task_seed(8, "Indy500-2019", 3, 20)


def test_shadow_report_is_deterministic(shadow_store, window):
    races = window.holdout_races()
    first = ShadowEvaluator(shadow_store, n_samples=10, stride=8).evaluate(
        "cand", "champ", races, seed=7
    )
    second = ShadowEvaluator(shadow_store, n_samples=10, stride=8).evaluate(
        "cand", "champ", races, seed=7
    )
    assert first.to_doc() == second.to_doc()
    assert first.tasks > 0
    assert first.races == [races[0].race_id]
    assert set(first.scores["cand"]) == {"mae", "top1", "sign"}
    assert set(first.deltas) == {"mae", "top1", "sign"}


def test_candidate_and_champion_must_be_distinct_artifacts(shadow_store, window):
    # "champion" is an alias of "champ": the service resolves both names to
    # the same artifact, which shadow evaluation refuses to compare
    with pytest.raises(ValueError, match="distinct"):
        ShadowEvaluator(shadow_store).evaluate(
            "champion", "champ", window.holdout_races(), seed=0
        )


def test_no_forecastable_origins_is_an_error(shadow_store, window):
    evaluator = ShadowEvaluator(shadow_store, min_history=10_000)
    with pytest.raises(ValueError, match="no forecastable origins"):
        evaluator.evaluate("cand", "champ", window.holdout_races(), seed=0)


def test_recommendation_rules():
    def report(mae_c, mae_k, top1_c=0.5, top1_k=0.5, sign_c=0.5, sign_k=0.5):
        return ShadowReport(
            candidate="cand",
            champion="champ",
            seed=0,
            races=["r"],
            tasks=1,
            scores={
                "cand": {"mae": mae_c, "top1": top1_c, "sign": sign_c},
                "champ": {"mae": mae_k, "top1": top1_k, "sign": sign_k},
            },
        )

    assert report(1.0, 2.0).recommend is True  # lower MAE wins
    assert report(2.0, 1.0).recommend is False  # higher MAE loses
    assert report(1.0, 1.0).recommend is True  # tie, no regression elsewhere
    assert report(1.0, 1.0, top1_c=0.4).recommend is False  # tie, top1 regressed
