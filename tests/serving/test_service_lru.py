"""Regression tests for ForecastService LRU accounting under active serving.

The original accounting only updated the LRU order inside ``load()``: a
model held by a long-lived consumer (a lap-streaming session keeps its
handle across hundreds of laps) was never promoted again and could be
evicted by unrelated loads while actively serving — and in ``carry`` mode
an evict-and-reload silently resets the carried warm-up states.  The fixes
under test: ``touch()`` (refresh without reload), ``pin()``/``unpin()``
(exclude from eviction while a session depends on the instance), and
``submit()`` re-promoting routed models when their engine pass completes.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import CurRankForecaster, DeepARForecaster, RankNetForecaster
from repro.serving import ForecastService, NamedForecastRequest, spawn_request_rngs
from repro.simulation import RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=200,
)


@pytest.fixture(scope="module")
def tiny_series():
    track = replace(track_for_year("Indy500", 2018), total_laps=70, num_cars=8)
    race = RaceSimulator(track, event="Indy500", year=2017, seed=29).run()
    return build_race_features(race)


@pytest.fixture(scope="module")
def store(tmp_path_factory, tiny_series):
    root = str(tmp_path_factory.mktemp("lru-store"))
    store = ArtifactStore(root)
    store.save_model("deepar", DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:5]))
    store.save_model(
        "oracle", RankNetForecaster(variant="oracle", seed=6, **DEEP_KWARGS).fit(tiny_series[:5])
    )
    store.save_model("naive", CurRankForecaster().fit(tiny_series[:5]))
    return store


def test_pinned_model_survives_eviction_pressure(store):
    """The regression: LRU pressure must not evict an actively-serving model."""
    service = ForecastService(store, capacity=2)
    service.pin("deepar")          # e.g. a live session opened on it
    service.load("oracle")
    service.load("naive")          # pre-fix this evicted "deepar" (the LRU entry)
    assert "deepar" in service.loaded()
    assert "oracle" not in service.loaded()  # the unpinned LRU model was the victim
    assert service.pinned() == ["deepar"]
    assert service.stats["evictions"] == 1


def test_pins_nest_and_unload_refuses_pinned_models(store):
    service = ForecastService(store, capacity=2)
    service.pin("deepar")
    service.pin("deepar")          # second session on the same model
    with pytest.raises(ValueError, match="pinned"):
        service.unload("deepar")
    assert service.unpin("deepar") is True
    with pytest.raises(ValueError, match="pinned"):
        service.unload("deepar")   # one session still active
    assert service.unpin("deepar") is True
    assert service.unpin("deepar") is False  # nothing left to release
    assert service.unload("deepar") is True


def test_loading_fails_cleanly_when_pins_exhaust_capacity(store):
    service = ForecastService(store, capacity=2)
    service.pin("deepar")
    service.pin("oracle")
    with pytest.raises(ValueError, match="pinned"):
        service.load("naive")
    # the failed load changed nothing
    assert service.loaded() == ["deepar", "oracle"]
    service.unpin("oracle")
    service.load("naive")
    assert "naive" in service.loaded() and "oracle" not in service.loaded()


def test_submit_capacity_guard_accounts_for_pinned_models(store, tiny_series):
    service = ForecastService(store, capacity=2)
    service.pin("naive")  # a live session holds one of the two slots
    series = tiny_series[0]
    model = service.load("deepar").forecaster
    rngs = spawn_request_rngs(np.random.default_rng(1), 2)
    request = model._fleet_request(
        series, 20, model._future_covariates(series, 20, 2), 5, rngs[0]
    )
    with pytest.raises(ValueError, match="pinned"):
        service.submit(
            [
                NamedForecastRequest("deepar", request),
                NamedForecastRequest("oracle", request),
            ]
        )
    # a batch that fits in the remaining slot still routes
    assert len(service.submit([NamedForecastRequest("deepar", request)])) == 1


def test_touch_promotes_without_reloading(store):
    service = ForecastService(store, capacity=3)
    service.load("deepar")
    service.load("oracle")
    assert service.loaded() == ["deepar", "oracle"]
    loads_before = service.stats["loads"]
    assert service.touch("deepar") is True
    assert service.loaded() == ["oracle", "deepar"]  # deepar is MRU again
    assert service.stats["loads"] == loads_before    # no disk read
    assert service.stats["touches"] == 1
    assert service.touch("never-loaded") is False


def test_submit_marks_routed_models_most_recently_used(store, tiny_series):
    service = ForecastService(store, capacity=3)
    series = tiny_series[0]
    model = service.load("deepar").forecaster
    service.load("oracle")  # oracle is now MRU, deepar is LRU
    assert service.loaded() == ["deepar", "oracle"]

    rngs = spawn_request_rngs(np.random.default_rng(0), 1)
    request = model._fleet_request(
        series, 20, model._future_covariates(series, 20, 2), 5, rngs[0]
    )
    service.submit([NamedForecastRequest("deepar", request)])
    # routing promoted the served model past the idle one
    assert service.loaded() == ["oracle", "deepar"]
    assert service.stats["touches"] >= 1
