"""End-to-end resilience: retries, idempotency, breakers, deadlines, recovery.

Every test runs a real ``ForecastServer`` over HTTP.  The invariant under
test throughout is the paper-repro contract: faults and retries must never
change the bytes a client ends up with — a retried request, a replayed
lap, or a journal-recovered session produces output bitwise equal to the
fault-free run.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import DeepARForecaster
from repro.serving import ForecastClient, ServerError
from repro.serving.client import LiveSessionClient
from repro.serving.faults import FaultPlan, FaultSpec
from repro.serving.resilience import RetryPolicy
from repro.serving.server import ForecastServer, ServerConfig
from repro.simulation import RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=200,
)

#: fast, test-sized retry policy (real waits would slow the suite)
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05, seed=0)


@pytest.fixture(scope="module")
def race():
    track = replace(track_for_year("Indy500", 2018), total_laps=40, num_cars=6)
    return RaceSimulator(track, event="Indy500", year=2019, seed=3).run()


@pytest.fixture(scope="module")
def tiny_series(race):
    return build_race_features(race)


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, tiny_series):
    root = str(tmp_path_factory.mktemp("resilience-store"))
    store = ArtifactStore(root)
    store.save_model("deepar", DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:4]))
    return root


def _server(store_root, **overrides):
    config = ServerConfig(store=store_root, port=0, batch_window_ms=1.0, **overrides)
    return ForecastServer(config)


def _batch(server, series, seeds, origin=20):
    forecaster = server.gateway.service.load("deepar").forecaster
    return [
        ForecastClient.request(
            "deepar",
            forecaster._history_target(series, origin + i),
            forecaster._history_covariates(series, origin + i),
            forecaster._future_covariates(series, origin + i, 2),
            n_samples=5,
            rng=seed,
            key=(series.race_id, series.car_id),
            origin=origin + i,
        )
        for i, seed in enumerate(seeds)
    ]


# ----------------------------------------------------------------------
# retries + idempotency byte-identity
# ----------------------------------------------------------------------
def test_retry_after_server_dropped_response_is_byte_identical(store_root, tiny_series):
    """The server executes, the response dies on the wire, the retry replays."""
    plan = FaultPlan([FaultSpec(kind="drop", route=r"POST /v1/forecast", at=0, when="after")])
    with _server(store_root, fault_plan=plan) as server:
        faulted = ForecastClient(port=server.port, retry=FAST_RETRY)
        got = faulted.forecast(_batch(server, tiny_series[0], [11, 12]))
        assert server.gateway.faults.fired == 1
        # the retry was answered from the idempotency cache, not re-executed
        assert server.gateway.idempotency.stats["hits"] == 1

        clean = ForecastClient(port=server.port)
        expected = clean.forecast(_batch(server, tiny_series[0], [11, 12]))
    for a, b in zip(got, expected):
        np.testing.assert_array_equal(a, b)


def test_client_side_connection_drops_are_retried_transparently(store_root, tiny_series):
    plan = FaultPlan(
        [
            FaultSpec(kind="drop", route=r"POST /v1/forecast", at=0, when="before"),
            FaultSpec(kind="error", route=r"POST /v1/forecast", at=1),
        ]
    )
    with _server(store_root) as server:
        faulted = ForecastClient(port=server.port, retry=FAST_RETRY, faults=plan)
        got = faulted.forecast(_batch(server, tiny_series[0], [21]))
        assert plan.fired == 2  # drop, then injected error, then success
        expected = ForecastClient(port=server.port).forecast(
            _batch(server, tiny_series[0], [21])
        )
    np.testing.assert_array_equal(got[0], expected[0])


def test_without_retry_policy_failures_surface_immediately(store_root, tiny_series):
    plan = FaultPlan([FaultSpec(kind="error", route=r"POST /v1/forecast", at=0)])
    with _server(store_root, fault_plan=plan) as server:
        client = ForecastClient(port=server.port)  # retry=None
        with pytest.raises(ServerError) as excinfo:
            client.forecast(_batch(server, tiny_series[0], [31]))
        assert excinfo.value.code == "injected_fault" and excinfo.value.status == 503


def test_non_idempotent_calls_are_never_retried(store_root):
    with _server(store_root) as server:
        client = ForecastClient(port=server.port, retry=FAST_RETRY)
        # a hand-rolled POST without an idempotency key must not retry
        plan = FaultPlan([FaultSpec(kind="drop", route=r"POST /v1/models", when="before")])
        client.faults = plan
        with pytest.raises(ConnectionError):
            client.load("deepar")
        assert plan.fired == 1  # exactly one attempt


# ----------------------------------------------------------------------
# admission control + draining
# ----------------------------------------------------------------------
def test_overload_sheds_with_structured_429(store_root, tiny_series):
    with _server(store_root, max_inflight=2) as server:
        client = ForecastClient(port=server.port)
        held = [server.gateway.admission.admit("test") for _ in range(2)]
        try:
            with pytest.raises(ServerError) as excinfo:
                client.forecast(_batch(server, tiny_series[0], [41]))
            error = excinfo.value
            assert error.code == "overloaded" and error.status == 429
            assert error.retry_after_ms >= 1
            # probes keep answering while work is shed
            health = client.health()
            assert health["in_flight"] == 2 and health["queue_depth"] == 1
        finally:
            for slot in held:
                slot.release()
        # slots freed: the same request is admitted now
        assert len(client.forecast(_batch(server, tiny_series[0], [41]))) == 1


def test_draining_gateway_refuses_work_but_answers_probes(store_root, tiny_series):
    with _server(store_root) as server:
        client = ForecastClient(port=server.port)
        server.gateway.draining = True
        try:
            with pytest.raises(ServerError) as excinfo:
                client.forecast(_batch(server, tiny_series[0], [51]))
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.detail["draining"] is True
            assert client.health()["status"] == "draining"
        finally:
            server.gateway.draining = False
        assert client.health()["status"] == "ok"


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_expired_deadline_is_shed_with_504(store_root, tiny_series):
    with _server(store_root) as server:
        client = ForecastClient(port=server.port)
        with pytest.raises(ServerError) as excinfo:
            # 100 ns budget: expired before the gateway can touch the engine
            client.forecast(_batch(server, tiny_series[0], [61]), deadline_ms=1e-4)
        assert excinfo.value.code == "deadline_exceeded" and excinfo.value.status == 504
        # a sane budget passes untouched
        assert len(client.forecast(_batch(server, tiny_series[0], [61]), deadline_ms=60_000)) == 1


def test_config_default_deadline_applies_when_wire_omits_it(store_root, tiny_series):
    with _server(store_root, request_deadline_ms=1e-4) as server:
        client = ForecastClient(port=server.port)
        with pytest.raises(ServerError) as excinfo:
            client.forecast(_batch(server, tiny_series[0], [62]))
        assert excinfo.value.code == "deadline_exceeded"
        # an explicit wire deadline overrides the config default
        assert len(client.forecast(_batch(server, tiny_series[0], [62]), deadline_ms=60_000)) == 1


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
def test_breaker_opens_after_engine_failures_and_cools_down(store_root, tiny_series):
    with _server(store_root, breaker_threshold=2, breaker_cooldown_s=60.0) as server:
        client = ForecastClient(port=server.port)
        # two consecutive engine failures (batch + isolation retry)
        server.gateway.arm_engine_errors(2)
        with pytest.raises(ServerError) as excinfo:
            client.forecast(_batch(server, tiny_series[0], [71]))
        assert excinfo.value.status >= 500

        # the circuit is open: requests fail fast without touching the engine
        with pytest.raises(ServerError) as excinfo:
            client.forecast(_batch(server, tiny_series[0], [72]))
        error = excinfo.value
        assert error.code == "circuit_open" and error.status == 503
        assert error.retry_after_ms > 0
        health = client.health()
        assert health["breakers"]["deepar"]["state"] == "open"

        # fast-forward past the cooldown: the half-open probe succeeds
        server.gateway.breaker_clock = lambda: time.monotonic() + 120.0
        got = client.forecast(_batch(server, tiny_series[0], [73]))
        assert len(got) == 1
        assert client.health()["breakers"]["deepar"]["state"] == "closed"

        # and the recovered engine still produces the reference bytes
        expected = ForecastClient(port=server.port).forecast(
            _batch(server, tiny_series[0], [73])
        )
        np.testing.assert_array_equal(got[0], expected[0])


# ----------------------------------------------------------------------
# health surface
# ----------------------------------------------------------------------
def test_health_reports_the_resilience_surface(store_root):
    with _server(store_root) as server:
        health = ForecastClient(port=server.port).health()
        assert health["status"] == "ok"
        assert health["in_flight"] == 0 and health["queue_depth"] == 0
        assert health["admission"]["limit"] == 32
        assert health["breakers"] == {}
        assert health["sessions_open"] == 0 and health["sessions_recovered"] == 0
        assert health["recovery_errors"] == []
        assert set(health["idempotency"]) == {"hits", "misses", "stored"}


# ----------------------------------------------------------------------
# crash-safe session recovery (in-process; the chaos harness SIGKILLs)
# ----------------------------------------------------------------------
def test_journal_recovery_resumes_sessions_byte_identically(store_root, race):
    laps = list(race.iter_laps())[:26]
    cut = 14

    # reference: one unbroken session over every lap (journaling off so the
    # reference server leaves nothing behind for the recovery boot to find)
    with _server(store_root, journal=False) as server:
        reference_client = ForecastClient(port=server.port)
        with reference_client.open_session("deepar", min_history=12, rng=9) as session:
            reference = [session.lap(lap, records) for lap, records in laps]

    # crashed gateway: same session, killed (journals kept) after `cut` laps
    with _server(store_root) as server:
        client = ForecastClient(port=server.port)
        session = client.open_session("deepar", min_history=12, rng=9)
        session_id = session.session_id
        before_crash = [session.lap(lap, records) for lap, records in laps[:cut]]
        # no clean close: exiting the context is the crash — ForecastServer
        # keeps the journals of still-open sessions exactly for this

    for got, expected in zip(before_crash, reference[:cut]):
        _assert_emitted_equal(got, expected)

    # restarted gateway: the journal rebuilds the session...
    with _server(store_root) as server:
        client = ForecastClient(port=server.port)
        health = client.health()
        assert health["sessions_recovered"] == 1 and health["recovery_errors"] == []
        [info] = client.sessions()
        assert info["session"] == session_id and info["recovered"] is True
        assert info["laps_observed"] == cut

        session = LiveSessionClient(client, session_id)
        # ...a duplicate of the last pre-crash lap replays its original answer
        replayed = session.lap(*laps[cut - 1])
        _assert_emitted_equal(replayed, reference[cut - 1])
        # ...and the remaining laps continue byte-identically to the
        # unbroken reference session: RNG and carry state recovered exactly
        after_crash = [session.lap(lap, records) for lap, records in laps[cut:]]
        for got, expected in zip(after_crash, reference[cut:]):
            _assert_emitted_equal(got, expected)
        session.close(drain=False)

    # the clean close removed the journal: nothing recovers on the next boot
    with _server(store_root) as server:
        assert ForecastClient(port=server.port).health()["sessions_recovered"] == 0


def test_disabled_journal_recovers_nothing(store_root, race):
    laps = list(race.iter_laps())[:3]
    with _server(store_root, journal=False) as server:
        client = ForecastClient(port=server.port)
        session = client.open_session("deepar", min_history=12, rng=4)
        for lap, records in laps:
            session.lap(lap, records)
    with _server(store_root) as server:
        client = ForecastClient(port=server.port)
        assert client.health()["sessions_recovered"] == 0
        assert client.sessions() == []


def _assert_emitted_equal(got, expected):
    assert len(got) == len(expected)
    for (origin_a, cars_a), (origin_b, cars_b) in zip(got, expected):
        assert origin_a == origin_b
        assert set(cars_a) == set(cars_b)
        for car_id in cars_a:
            np.testing.assert_array_equal(cars_a[car_id], cars_b[car_id])


def test_worker_restart_window_is_retried_transparently(store_root, tiny_series):
    """Satellite gate: ``worker_restarting`` rides the seeded retry schedule.

    The model's worker replica is SIGKILLed; the very next forecast meets
    either the death itself or the ``worker_restarting`` window.  A client
    with a retry policy absorbs both and still returns bytes identical to
    the in-process submission; a client without one surfaces the
    structured envelope.
    """
    retry = RetryPolicy(max_attempts=10, base_delay_s=0.05, max_delay_s=0.5, seed=3)
    with _server(
        store_root,
        workers=True,
        preload=["deepar"],
        worker_backoff_s=0.05,
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=1.0,
    ) as server:
        client = ForecastClient(port=server.port, retry=retry)
        expected = server.gateway.service.submit(_batch(server, tiny_series[0], seeds=(31, 32)))

        server.gateway.inject_worker_fault("kill_worker", "deepar")
        got = client.forecast(_batch(server, tiny_series[0], seeds=(31, 32)))
        for got_one, expected_one in zip(got, expected):
            np.testing.assert_array_equal(got_one, expected_one)

        # without a retry policy the restart window surfaces structured
        server.gateway.inject_worker_fault("kill_worker", "deepar")
        plain = ForecastClient(port=server.port)
        with pytest.raises(ServerError) as excinfo:
            for _ in range(20):  # the window is short; hit it before recovery
                plain.forecast(_batch(server, tiny_series[0], seeds=(33,)))
        assert excinfo.value.code in ("worker_restarting", "internal_error")
        assert excinfo.value.status in (500, 503)
