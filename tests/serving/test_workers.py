"""Worker-mode gateway tests: parity, health, isolation of crashes, failover.

These run the full HTTP gateway with ``workers: true`` — every model is a
real forked subprocess — and assert the contract that makes worker mode
invisible to well-behaved clients: byte-identical forecasts, structured
``worker_restarting`` envelopes during a respawn, and journal-replay
session failover that resumes a live race bitwise exactly.
"""

import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import DeepARForecaster
from repro.serving import ForecastClient, ForecastService
from repro.serving.resilience import RetryPolicy, WorkerRestartingError
from repro.serving.server import ForecastGateway, ForecastServer, ServerConfig
from repro.simulation import LiveRaceForecaster, RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=150,
)

KILL_AT_LAP = 20


@pytest.fixture(scope="module")
def race():
    track = replace(track_for_year("Indy500", 2018), total_laps=45, num_cars=8)
    return RaceSimulator(track, event="Indy500", year=2019, seed=3).run()


@pytest.fixture(scope="module")
def tiny_series(race):
    return build_race_features(race)


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, tiny_series):
    root = str(tmp_path_factory.mktemp("workers-store"))
    store = ArtifactStore(root)
    model = DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:4])
    # the same fitted artifact under two names: two independent worker
    # replicas whose outputs are directly comparable
    store.save_model("deepar", model)
    store.save_model("deepar-b", model)
    return root


def _worker_config(store_root, **overrides):
    options = dict(
        store=store_root,
        port=0,
        capacity=2,
        batch_window_ms=2.0,
        workers=True,
        preload=["deepar"],
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=1.0,
        worker_backoff_s=0.02,
    )
    options.update(overrides)
    return ServerConfig(**options)


@pytest.fixture(scope="module")
def server(store_root):
    with ForecastServer(_worker_config(store_root)) as running:
        yield running


@pytest.fixture()
def client(server):
    return ForecastClient(port=server.port)


def _named(forecaster, series, origin, seed, model="deepar", n_samples=7, horizon=2):
    return ForecastClient.request(
        model,
        forecaster._history_target(series, origin),
        forecaster._history_covariates(series, origin),
        forecaster._future_covariates(series, origin, horizon),
        n_samples=n_samples,
        rng=seed,
        key=(series.race_id, series.car_id),
        origin=origin,
    )


def _wait(predicate, timeout=60.0, step=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return False


def _worker(gateway, model):
    return next(w for w in gateway.supervisor.describe() if w["model"] == model)


# ----------------------------------------------------------------------
# parity and health
# ----------------------------------------------------------------------
def test_worker_mode_forecast_is_byte_identical_to_in_process(
    client, store_root, tiny_series
):
    service = ForecastService(ArtifactStore(store_root))
    forecaster = service.load("deepar").forecaster
    series = tiny_series[0]
    batch = lambda: [_named(forecaster, series, 20 + i, 11 + i) for i in range(3)]  # noqa: E731

    via_http = client.forecast(batch())
    direct = service.submit(batch())
    for got, expected in zip(via_http, direct):
        np.testing.assert_array_equal(got, expected)


def test_health_reports_workers_uptime_and_pool_stats(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["uptime_s"] >= 0.0
    workers = {w["model"]: w for w in health["workers"]}
    assert "deepar" in workers
    assert {
        "model",
        "pid",
        "state",
        "restarts",
        "episode",
        "queue_depth",
        "pinned",
        "uptime_s",
    } <= set(workers["deepar"])
    assert workers["deepar"]["state"] == "live" and workers["deepar"]["pid"]
    assert {"spawns", "restarts", "heartbeat_kills", "shed"} <= set(health["worker_pool"])


# ----------------------------------------------------------------------
# crash isolation
# ----------------------------------------------------------------------
def test_batch_mates_survive_a_worker_death_byte_identically(
    server, store_root, tiny_series
):
    """A mixed batch whose other model's worker dies still settles cleanly.

    The killed model's requests fail structured-and-retryable; the
    survivor's settle byte-identical to submitting them alone.
    """
    gateway = server.gateway
    service = ForecastService(ArtifactStore(store_root))
    forecaster = service.load("deepar").forecaster
    series = tiny_series[0]
    gateway.supervisor.ensure("deepar-b")

    solo = service.submit([_named(forecaster, series, 24, 41), _named(forecaster, series, 26, 43)])

    gateway.inject_worker_fault("kill_worker", "deepar-b")
    mixed = [
        _named(forecaster, series, 24, 41),
        _named(forecaster, series, 25, 99, model="deepar-b"),
        _named(forecaster, series, 26, 43),
        _named(forecaster, series, 27, 98, model="deepar-b"),
    ]
    settled = gateway.submit_settled(mixed)

    np.testing.assert_array_equal(settled[0], solo[0])
    np.testing.assert_array_equal(settled[2], solo[1])
    for outcome in (settled[1], settled[3]):
        assert isinstance(outcome, (RuntimeError, WorkerRestartingError)), outcome
    # and the dead batch-mate comes back on its own
    assert _wait(
        lambda: _worker(gateway, "deepar-b")["state"] == "live"
        and _worker(gateway, "deepar-b")["restarts"] >= 1
    )


def test_forecasts_during_restart_get_structured_worker_restarting(store_root, tiny_series):
    config = _worker_config(store_root, worker_backoff_s=30.0)
    gateway = ForecastGateway(config)
    try:
        service = ForecastService(ArtifactStore(store_root))
        forecaster = service.load("deepar").forecaster
        gateway.inject_worker_fault("kill_worker", "deepar")
        assert _wait(lambda: _worker(gateway, "deepar")["state"] != "live", timeout=10.0)

        settled = gateway.submit_settled([_named(forecaster, tiny_series[0], 20, 11)])
        assert isinstance(settled[0], WorkerRestartingError)
        assert settled[0].status == 503
        assert settled[0].detail["retry_after_ms"] > 0

        # health keeps answering, with per-worker state and breaker map,
        # while the replica is down
        health = gateway._handle_health(None)
        assert health["status"] == "ok"
        assert _worker(gateway, "deepar")["state"] in ("restarting", "failed")
        assert isinstance(health["breakers"], dict)
    finally:
        gateway.close()


# ----------------------------------------------------------------------
# session failover
# ----------------------------------------------------------------------
def test_http_session_resumes_byte_identically_across_worker_kill(
    server, client, store_root, race
):
    """The tentpole acceptance gate, over real HTTP with client retries.

    The worker serving a live session is SIGKILLed mid-race; the client's
    retry policy rides out the restart window, the supervisor replays the
    session journal into the replacement replica, and the streamed
    forecasts stay bitwise equal to an uncrashed in-process run.
    """
    gateway = server.gateway
    retry_client = ForecastClient(
        port=server.port, retry=RetryPolicy(max_attempts=8, base_delay_s=0.05, seed=7)
    )
    restarts_before = _worker(gateway, "deepar")["restarts"]
    recovered_before = gateway.sessions_recovered

    session = retry_client.open_session(
        "deepar", horizon=2, n_samples=5, min_history=12, rng=0,
        start=14, stop=30, delay=4, event=race.event, year=race.year,
    )
    streamed = []
    for lap, records in race.iter_laps():
        if lap == KILL_AT_LAP:
            assert gateway.inject_worker_fault("kill_worker", "deepar")
        streamed.extend(session.lap(lap, records))
    streamed.extend(session.close())

    live = LiveRaceForecaster(
        ArtifactStore(store_root).load_model("deepar"),
        horizon=2, n_samples=5, min_history=12, rng=0,
    )
    reference = list(live.stream(race, start=14, stop=30))
    assert [origin for origin, _ in streamed] == [origin for origin, _ in reference]
    for (origin, got), (_, expected) in zip(streamed, reference):
        for car_id in set(got) | set(expected):
            np.testing.assert_array_equal(got.get(car_id), expected.get(car_id))

    assert gateway.sessions_recovered >= recovered_before + 1
    assert gateway.recovery_errors == []
    assert _worker(gateway, "deepar")["restarts"] >= restarts_before + 1
    # the closed session's journal was removed on the clean close
    assert gateway.journal_dir is not None
    assert not any(
        name.startswith(session.session_id) for name in os.listdir(gateway.journal_dir)
    )
