"""End-to-end tests of the HTTP gateway: wire API, byte-identity, errors."""

import json
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import CurRankForecaster, DeepARForecaster, RankNetForecaster
from repro.serving import ForecastClient, ForecastService, ServerError
from repro.serving.server import ForecastServer, ServerConfig
from repro.simulation import LiveRaceForecaster, RaceSimulator, track_for_year
from repro.strategy import PitStrategyOptimizer

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=200,
)


@pytest.fixture(scope="module")
def race():
    track = replace(track_for_year("Indy500", 2018), total_laps=60, num_cars=8)
    return RaceSimulator(track, event="Indy500", year=2019, seed=3).run()


@pytest.fixture(scope="module")
def tiny_series(race):
    return build_race_features(race)


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, tiny_series):
    root = str(tmp_path_factory.mktemp("server-store"))
    store = ArtifactStore(root)
    store.save_model("deepar", DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:4]))
    store.save_model(
        "oracle", RankNetForecaster(variant="oracle", seed=6, **DEEP_KWARGS).fit(tiny_series[:4])
    )
    store.save_model("naive", CurRankForecaster().fit(tiny_series[:4]))
    return root


@pytest.fixture(scope="module")
def server(store_root):
    config = ServerConfig(store=store_root, port=0, capacity=3, batch_window_ms=2.0)
    with ForecastServer(config) as running:
        yield running


@pytest.fixture()
def client(server):
    return ForecastClient(port=server.port)


def _named(forecaster, series, origin, seed, model="deepar", n_samples=7, horizon=2):
    return ForecastClient.request(
        model,
        forecaster._history_target(series, origin),
        forecaster._history_covariates(series, origin),
        forecaster._future_covariates(series, origin, horizon),
        n_samples=n_samples,
        rng=seed,
        key=(series.race_id, series.car_id),
        origin=origin,
    )


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------
def test_health_and_model_catalog(client):
    assert client.health()["status"] == "ok"
    models = client.models()
    assert {m["name"] for m in models} == {"deepar", "oracle", "naive"}
    for entry in models:
        assert {"family", "sha256", "loaded", "pinned"} <= set(entry)


def test_model_load_unload_roundtrip(client):
    assert client.load("naive")["name"] == "naive"
    assert "naive" in client.loaded()
    assert client.unload("naive") is True
    assert client.unload("naive") is False
    with pytest.raises(ServerError) as excinfo:
        client.load("no-such-model")
    assert excinfo.value.code == "unknown_model" and excinfo.value.status == 404


# ----------------------------------------------------------------------
# forecasting
# ----------------------------------------------------------------------
def test_http_forecast_is_byte_identical_to_direct_submit(client, server, store_root, tiny_series):
    series = tiny_series[0]
    forecaster = server.gateway.service.load("deepar").forecaster
    batch = [_named(forecaster, series, 20, 11), _named(forecaster, series, 25, 12)]
    via_http = client.forecast(batch)

    direct_service = ForecastService(ArtifactStore(store_root))
    direct = direct_service.submit(
        [_named(forecaster, series, 20, 11), _named(forecaster, series, 25, 12)]
    )
    for got, expected in zip(via_http, direct):
        np.testing.assert_array_equal(got, expected)


def test_concurrent_clients_through_the_scheduler_stay_byte_identical(
    client, server, store_root, tiny_series
):
    """Acceptance gate: >= 3 concurrent clients coalesced by the micro-batcher."""
    series = tiny_series[0]
    gateway_service = server.gateway.service
    deepar = gateway_service.load("deepar").forecaster
    oracle = gateway_service.load("oracle").forecaster

    def batch_for(client_id):
        model, forecaster = (
            ("deepar", deepar) if client_id % 2 == 0 else ("oracle", oracle)
        )
        return [
            _named(forecaster, series, 20 + client_id, 1000 * client_id + i, model=model)
            for i in range(3)
        ]

    reference_service = ForecastService(ArtifactStore(store_root), capacity=2)
    reference = {c: reference_service.submit(batch_for(c)) for c in range(4)}

    results: dict = {}
    errors: list = []
    barrier = threading.Barrier(4)

    def run_client(client_id):
        try:
            barrier.wait()
            own = ForecastClient(port=client.port)
            results[client_id] = own.forecast(batch_for(client_id))
        except Exception as exc:  # pragma: no cover - surfaced by the assert
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(c,)) for c in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    for client_id in range(4):
        for got, expected in zip(results[client_id], reference[client_id]):
            np.testing.assert_array_equal(got, expected)


def test_per_request_errors_do_not_poison_the_batch(client, server, tiny_series):
    series = tiny_series[0]
    forecaster = server.gateway.service.load("deepar").forecaster
    good = _named(forecaster, series, 20, 5)
    bad = _named(forecaster, series, 20, 6, model="no-such-model")
    outcomes = client.forecast([good, bad], raise_errors=False)
    assert isinstance(outcomes[0], np.ndarray)
    assert isinstance(outcomes[1], ServerError)
    assert outcomes[1].code == "unknown_model"
    with pytest.raises(ServerError):
        client.forecast([good, bad])


def test_forecast_without_rng_is_rejected(client, server, tiny_series):
    series = tiny_series[0]
    forecaster = server.gateway.service.load("deepar").forecaster
    from repro.serving import wire

    document = wire.forecast_batch_to_wire([_named(forecaster, series, 20, 1)])
    document["requests"][0]["request"]["rng"] = None
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", "/v1/forecast", document)
    assert excinfo.value.code == "malformed_request"


# ----------------------------------------------------------------------
# strategy sweeps
# ----------------------------------------------------------------------
def test_sweep_over_the_wire_matches_in_process(client, server, store_root, tiny_series):
    series = tiny_series[0]
    points = client.sweep(
        "oracle", series, origins=[24, 25], horizon=5, n_samples=8, rng=17, mode="carry"
    )
    reference_model = ArtifactStore(store_root).load_model("oracle")
    optimizer = PitStrategyOptimizer(reference_model, n_samples=8)
    reference = optimizer.sweep(
        series, [24, 25], 5, mode="carry", rng=np.random.default_rng(17)
    )
    assert [p.origin for p in points] == [p.origin for p in reference]
    for got, expected in zip(points, reference):
        assert got.current_rank == expected.current_rank
        assert got.outcomes == expected.outcomes  # dataclass equality: exact floats


def test_sweep_on_non_covariate_model_is_unsupported(client, tiny_series):
    with pytest.raises(ServerError) as excinfo:
        client.sweep("naive", tiny_series[0], origins=[24], horizon=5, rng=0)
    assert excinfo.value.code == "unsupported_family"


# ----------------------------------------------------------------------
# live sessions
# ----------------------------------------------------------------------
def test_lap_streamed_session_matches_in_process_stream(client, server, store_root, race):
    session = client.open_session(
        "deepar", horizon=2, n_samples=5, min_history=12, rng=0,
        start=14, stop=40, delay=4, event=race.event, year=race.year,
    )
    streamed = []
    for lap, records in race.iter_laps():
        streamed.extend(session.lap(lap, records))
    streamed.extend(session.close())

    reference_model = ArtifactStore(store_root).load_model("deepar")
    live = LiveRaceForecaster(reference_model, horizon=2, n_samples=5, min_history=12, rng=0)
    reference = list(live.stream(race, start=14, stop=40))

    assert [origin for origin, _ in streamed] == [origin for origin, _ in reference]
    for (origin, got), (_, expected) in zip(streamed, reference):
        assert sorted(got) == sorted(expected)
        for car_id in got:
            np.testing.assert_array_equal(got[car_id], expected[car_id])


def test_session_pins_its_model_and_close_releases_it(client, server, race):
    session = client.open_session("oracle", min_history=12, rng=1)
    listed = client.sessions()
    assert any(s["session"] == session.session_id for s in listed)
    catalog = {m["name"]: m for m in client.models()}
    assert catalog["oracle"]["pinned"] is True
    with pytest.raises(ServerError) as excinfo:
        client.unload("oracle")
    assert excinfo.value.code == "model_pinned" and excinfo.value.status == 409
    session.close(drain=False)
    catalog = {m["name"]: m for m in client.models()}
    assert catalog["oracle"]["pinned"] is False
    assert all(s["session"] != session.session_id for s in client.sessions())


def test_session_requires_an_explicit_rng(client):
    from repro.serving import wire

    with pytest.raises(ValueError, match="rng"):
        client.open_session("deepar")  # the client refuses locally
    # and the server enforces it for hand-rolled wire documents too
    payload = wire.envelope("session-open", model="deepar", rng=None)
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", "/v1/sessions", payload)
    assert excinfo.value.code == "malformed_request"


def test_session_error_paths(client, race):
    with pytest.raises(ServerError) as excinfo:
        ForecastClient(port=client.port).open_session("no-such-model", rng=0)
    assert excinfo.value.code == "unknown_model"

    session = client.open_session("deepar", min_history=12, rng=2)
    try:
        lap, records = next(race.iter_laps())
        first = session.lap(lap, records)
        # a duplicate lap post is an idempotent replay of the original
        # answer (the retry-after-lost-response case), not an error
        replay = session.lap(lap, records)
        assert first == [] and replay == []  # no origin final after one lap
        with pytest.raises(ServerError) as excinfo:
            session.lap(lap - 1, records)  # stale AND never observed
        assert excinfo.value.code == "invalid_request"
    finally:
        session.close(drain=False)

    with pytest.raises(ServerError) as excinfo:
        session.lap(lap + 1, records)  # session is gone
    assert excinfo.value.code == "unknown_session" and excinfo.value.status == 404


# ----------------------------------------------------------------------
# transport-level errors and schema guards
# ----------------------------------------------------------------------
def test_unknown_route_method_and_schema_guards(client):
    with pytest.raises(ServerError) as excinfo:
        client._call("GET", "/v2/models")
    assert excinfo.value.code == "unknown_route" and excinfo.value.status == 404
    with pytest.raises(ServerError) as excinfo:
        client._call("DELETE", "/v1/models")
    assert excinfo.value.code == "method_not_allowed" and excinfo.value.status == 405
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", "/v1/forecast", {"schema_version": 99, "kind": "forecast-batch"})
    assert excinfo.value.code == "unsupported_schema"
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", "/v1/forecast", {"kind": "forecast-batch"})
    assert excinfo.value.code == "malformed_request"


def test_malformed_json_body_is_a_structured_error(server):
    import http.client

    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        connection.request(
            "POST", "/v1/forecast", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        document = json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()
    assert response.status == 400
    assert document["kind"] == "error"
    assert document["error"]["code"] == "malformed_request"


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
def test_config_rejects_unknown_keys(tmp_path):
    with pytest.raises(ValueError, match="unknown server config key"):
        ServerConfig.from_dict({"store": "x", "window_ms": 5})
    with pytest.raises(ValueError, match="batch_window_ms"):
        # the error names the known keys so the typo is easy to fix
        ServerConfig.from_dict({"store": "x", "window": 1})


def test_config_requires_store_and_resolves_relative_paths(tmp_path):
    with pytest.raises(ValueError, match="store"):
        ServerConfig.from_dict({})
    path = tmp_path / "conf.json"
    path.write_text(json.dumps({"store": "artifacts", "port": 0}))
    config = ServerConfig.from_file(str(path))
    assert config.store == str(tmp_path / "artifacts")
    assert config.port == 0


def test_config_file_with_bad_json_or_negative_window(tmp_path):
    path = tmp_path / "conf.json"
    path.write_text("{broken")
    with pytest.raises(ValueError, match="not valid JSON"):
        ServerConfig.from_file(str(path))
    with pytest.raises(ValueError, match="batch_window_ms"):
        ServerConfig.from_dict({"store": "x", "batch_window_ms": -1})
