"""Tests for the multi-model ForecastService: routing, LRU, capacity."""

from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import CurRankForecaster, DeepARForecaster, RankNetForecaster
from repro.serving import ForecastService, NamedForecastRequest, spawn_request_rngs
from repro.simulation import RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=200,
)


@pytest.fixture(scope="module")
def tiny_series():
    track = replace(track_for_year("Indy500", 2018), total_laps=80, num_cars=10)
    race = RaceSimulator(track, event="Indy500", year=2017, seed=11).run()
    return build_race_features(race)


@pytest.fixture(scope="module")
def store(tmp_path_factory, tiny_series):
    root = str(tmp_path_factory.mktemp("artifact-store"))
    store = ArtifactStore(root)
    deepar = DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:6])
    oracle = RankNetForecaster(variant="oracle", seed=6, **DEEP_KWARGS).fit(tiny_series[:6])
    naive = CurRankForecaster().fit(tiny_series[:6])
    store.save_model("deepar", deepar)
    store.save_model("oracle", oracle)
    store.save_model("naive", naive)
    return store


def _request(forecaster, series, origin, horizon, n_samples, rng):
    return forecaster._fleet_request(
        series, origin, forecaster._future_covariates(series, origin, horizon), n_samples, rng
    )


def test_two_models_served_concurrently_match_direct_engines(store, tiny_series):
    service = ForecastService(store, capacity=2)
    series = tiny_series[0]
    model_a = service.load("deepar").forecaster
    model_b = service.load("oracle").forecaster

    rngs = spawn_request_rngs(np.random.default_rng(7), 4)
    batch = [
        NamedForecastRequest("deepar", _request(model_a, series, 20, 4, 9, rngs[0])),
        NamedForecastRequest("oracle", _request(model_b, series, 20, 4, 9, rngs[1])),
        NamedForecastRequest("deepar", _request(model_a, series, 25, 4, 9, rngs[2])),
        NamedForecastRequest("oracle", _request(model_b, series, 25, 4, 9, rngs[3])),
    ]
    routed = service.submit(batch)

    # reference: fresh store loads, per-model direct submits, same streams
    reference_rngs = spawn_request_rngs(np.random.default_rng(7), 4)
    ref_a = store.load_model("deepar")
    ref_b = store.load_model("oracle")
    direct_a = ref_a.fleet_engine().submit(
        [
            _request(ref_a, series, 20, 4, 9, reference_rngs[0]),
            _request(ref_a, series, 25, 4, 9, reference_rngs[2]),
        ]
    )
    direct_b = ref_b.fleet_engine().submit(
        [
            _request(ref_b, series, 20, 4, 9, reference_rngs[1]),
            _request(ref_b, series, 25, 4, 9, reference_rngs[3]),
        ]
    )
    np.testing.assert_array_equal(routed[0], direct_a[0])
    np.testing.assert_array_equal(routed[2], direct_a[1])
    np.testing.assert_array_equal(routed[1], direct_b[0])
    np.testing.assert_array_equal(routed[3], direct_b[1])


def test_lru_eviction_under_capacity_pressure(store):
    service = ForecastService(store, capacity=2)
    service.load("deepar")
    service.load("oracle")
    assert service.loaded() == ["deepar", "oracle"]
    # touching deepar makes oracle the LRU victim
    service.load("deepar")
    service.load("naive")
    assert service.loaded() == ["deepar", "naive"]
    stats = service.stats
    assert stats["evictions"] == 1 and stats["loads"] == 3 and stats["hits"] == 1
    # an evicted model reloads from disk on demand
    service.load("oracle")
    assert service.loaded() == ["naive", "oracle"]
    assert service.stats["evictions"] == 2


def test_unload_and_listing(store):
    service = ForecastService(store, capacity=3)
    service.load("naive")
    assert service.unload("naive") is True
    assert service.unload("naive") is False
    assert service.loaded() == []
    assert set(service.available()) == {"deepar", "oracle", "naive"}


def test_forecast_and_forecast_fleet_through_named_models(store, tiny_series):
    service = ForecastService(store, capacity=2)
    series = tiny_series[0]
    forecast = service.forecast("naive", series, 20, 4, n_samples=5)
    assert forecast.samples.shape == (5, 4)
    fleet = service.forecast_fleet("deepar", [(series, 20, 4), (series, 25, 4)], n_samples=5)
    assert len(fleet) == 2 and fleet[0].samples.shape == (5, 4)


def test_submit_rejects_over_capacity_batches_and_bad_types(store, tiny_series):
    service = ForecastService(store, capacity=1)
    series = tiny_series[0]
    model = service.load("deepar").forecaster
    rngs = spawn_request_rngs(np.random.default_rng(0), 2)
    request = _request(model, series, 20, 4, 5, rngs[0])
    with pytest.raises(ValueError, match="capacity"):
        service.submit(
            [
                NamedForecastRequest("deepar", request),
                NamedForecastRequest("oracle", _request(model, series, 20, 4, 5, rngs[1])),
            ]
        )
    with pytest.raises(TypeError):
        service.submit([request])  # bare ForecastRequest, not named
    assert service.submit([]) == []


def test_non_deep_model_has_no_engine(store):
    service = ForecastService(store, capacity=2)
    handle = service.load("naive")
    with pytest.raises(TypeError, match="fleet engine"):
        handle.engine()


def test_capacity_validation(store):
    with pytest.raises(ValueError):
        ForecastService(store, capacity=0)
