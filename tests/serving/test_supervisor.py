"""WorkerSupervisor tests: parity, heartbeats, restart budget, shedding.

Every test runs real forked worker processes against a tiny fitted store;
``min_uptime_s`` is pinned high so crash episodes accumulate
deterministically (a replica never "earns back" its budget mid-test).
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import CurRankForecaster, DeepARForecaster
from repro.serving import ForecastClient, ForecastService
from repro.serving.resilience import OverloadedError, WorkerRestartingError
from repro.serving.supervisor import (
    FAILED,
    LIVE,
    RaceSessionProxy,
    WorkerSupervisor,
)
from repro.serving.wire import rng_to_wire
from repro.simulation import LiveRaceForecaster, RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=150,
)


@pytest.fixture(scope="module")
def race():
    track = replace(track_for_year("Indy500", 2018), total_laps=45, num_cars=8)
    return RaceSimulator(track, event="Indy500", year=2019, seed=3).run()


@pytest.fixture(scope="module")
def tiny_series(race):
    return build_race_features(race)


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, tiny_series):
    root = str(tmp_path_factory.mktemp("supervisor-store"))
    store = ArtifactStore(root)
    store.save_model("deepar", DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:4]))
    store.save_model("naive", CurRankForecaster().fit(tiny_series[:4]))
    return root


@pytest.fixture()
def supervisor(store_root):
    sup = WorkerSupervisor(
        store_root,
        capacity=2,
        restart_budget=2,
        backoff_base_s=0.02,
        min_uptime_s=3600.0,
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=1.0,
    )
    yield sup
    sup.close()


def _named(forecaster, series, origin, seed, model="deepar", n_samples=7, horizon=2):
    return ForecastClient.request(
        model,
        forecaster._history_target(series, origin),
        forecaster._history_covariates(series, origin),
        forecaster._future_covariates(series, origin, horizon),
        n_samples=n_samples,
        rng=seed,
        key=(series.race_id, series.car_id),
        origin=origin,
    )


def _wait(predicate, timeout=60.0, step=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return False


def _describe(sup, model):
    return next(d for d in sup.describe() if d["model"] == model)


# ----------------------------------------------------------------------
# routing and parity
# ----------------------------------------------------------------------
def test_worker_forecast_is_byte_identical_to_in_process(supervisor, store_root, tiny_series):
    service = ForecastService(ArtifactStore(store_root))
    forecaster = service.load("deepar").forecaster
    series = tiny_series[0]
    batch = lambda: [_named(forecaster, series, 20 + i, 11 + i) for i in range(3)]  # noqa: E731

    via_worker = supervisor.submit("deepar", batch())
    direct = service.submit(batch())
    assert len(via_worker) == 3
    for got, expected in zip(via_worker, direct):
        np.testing.assert_array_equal(got, expected)
    entry = _describe(supervisor, "deepar")
    assert entry["state"] == LIVE and entry["pid"] and entry["restarts"] == 0


def test_capacity_eviction_respects_pins(supervisor):
    supervisor.pin("deepar")
    supervisor.ensure("naive")
    assert supervisor.models() == ["deepar", "naive"]
    # both slots taken, one pinned: the unpinned replica is the LRU victim
    supervisor.touch("naive")
    with pytest.raises(ValueError, match="pinned"):
        supervisor.stop("deepar")
    assert supervisor.unpin("deepar") is True
    assert supervisor.stop("deepar") is True
    assert supervisor.models() == ["naive"]


def test_full_worker_queue_sheds_with_retry_hint(supervisor):
    handle = supervisor.ensure("naive")
    handle.depth = supervisor.queue_limit  # simulate a saturated replica
    with pytest.raises(OverloadedError) as excinfo:
        supervisor.submit("naive", [])
    assert excinfo.value.detail["retry_after_ms"] >= 50
    assert supervisor.stats["shed"] == 1
    handle.depth = 0
    supervisor.submit("naive", [])  # drained queue accepts again


# ----------------------------------------------------------------------
# crash detection and restarts
# ----------------------------------------------------------------------
def test_killed_worker_restarts_with_a_new_pid(supervisor, store_root, tiny_series):
    service = ForecastService(ArtifactStore(store_root))
    forecaster = service.load("deepar").forecaster
    series = tiny_series[0]
    expected = service.submit([_named(forecaster, series, 22, 17)])[0]

    first_pid = supervisor.ensure("deepar").pid
    assert supervisor.kill_worker("deepar") == first_pid
    assert _wait(
        lambda: _describe(supervisor, "deepar")["state"] == LIVE
        and _describe(supervisor, "deepar")["restarts"] == 1
    )
    entry = _describe(supervisor, "deepar")
    assert entry["pid"] != first_pid
    assert entry["last_failure"]  # the crash reason survives the restart
    assert supervisor.stats["restarts"] == 1
    # the replacement replica serves byte-identical forecasts
    got = supervisor.submit("deepar", [_named(forecaster, series, 22, 17)])[0]
    np.testing.assert_array_equal(got, expected)


def test_hung_worker_misses_heartbeats_and_is_killed(supervisor):
    supervisor.ensure("naive")
    assert supervisor.hang_worker("naive") is not None  # SIGSTOP, not SIGKILL
    assert _wait(
        lambda: _describe(supervisor, "naive")["restarts"] >= 1
        and _describe(supervisor, "naive")["state"] == LIVE
    )
    assert supervisor.stats["heartbeat_kills"] >= 1
    assert "heartbeat" in _describe(supervisor, "naive")["last_failure"]


def test_calls_during_restart_backoff_get_worker_restarting(store_root):
    sup = WorkerSupervisor(
        store_root,
        backoff_base_s=30.0,
        backoff_max_s=30.0,
        min_uptime_s=3600.0,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.0,
    )
    try:
        sup.ensure("naive")
        sup.kill_worker("naive")
        assert _wait(lambda: _describe(sup, "naive")["state"] != LIVE, timeout=10.0)
        with pytest.raises(WorkerRestartingError) as excinfo:
            sup.submit("naive", [])
        assert excinfo.value.code == "worker_restarting"
        assert excinfo.value.status == 503
        assert excinfo.value.detail["retry_after_ms"] > 0
    finally:
        # closing mid-backoff must not leak a respawned orphan process
        sup.close()
    assert sup.describe() == []


def test_restart_budget_exhaustion_marks_the_replica_failed(store_root):
    sup = WorkerSupervisor(
        store_root,
        restart_budget=1,
        backoff_base_s=0.01,
        min_uptime_s=3600.0,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.0,
    )
    try:
        sup.ensure("naive")
        sup.kill_worker("naive")  # episode 1: within budget, restarts
        assert _wait(lambda: _describe(sup, "naive")["restarts"] == 1)
        sup.kill_worker("naive")  # episode 2: budget (1) exhausted
        assert _wait(lambda: _describe(sup, "naive")["state"] == FAILED)
        entry = _describe(sup, "naive")
        assert "restart budget" in entry["last_failure"]
        with pytest.raises(WorkerRestartingError) as excinfo:
            sup.submit("naive", [])
        assert excinfo.value.detail["retry_after_ms"] == 5000
    finally:
        sup.close()


# ----------------------------------------------------------------------
# worker-resident sessions
# ----------------------------------------------------------------------
def test_session_proxy_accepts_raw_lap_records(supervisor, store_root, race):
    """LapRecord objects are normalised before crossing the pipe."""
    document = {
        "model": "deepar",
        "horizon": 2,
        "n_samples": 5,
        "min_history": 12,
        "start": 14,
        "stop": 20,
        "rng": rng_to_wire(0),
        "delay": 4,
        "event": race.event,
        "year": race.year,
    }
    info = supervisor.session_open("deepar", "sess-test", document)
    proxy = RaceSessionProxy(supervisor, "deepar", "sess-test", info)
    streamed = []
    for lap, records in race.iter_laps():
        emitted, replayed = proxy.apply_lap(lap, list(records))
        assert replayed is False
        streamed.extend(emitted)
        if lap >= 22:
            break
    streamed.extend(proxy.finish())
    assert proxy.laps_observed > 0

    live = LiveRaceForecaster(
        ArtifactStore(store_root).load_model("deepar"),
        horizon=2,
        n_samples=5,
        min_history=12,
        rng=0,
    )
    reference = list(live.stream(race, start=14, stop=20))
    assert [origin for origin, _ in streamed] == [origin for origin, _ in reference]
    for (origin, got), (_, expected) in zip(streamed, reference):
        for car_id in set(got) | set(expected):
            np.testing.assert_array_equal(got.get(car_id), expected.get(car_id))
