"""Unit tests of the crash-safe session journal (writes, torn tails, recovery)."""

import json
import os

import pytest

from repro.serving.journal import (
    JOURNAL_SUFFIX,
    RecoveredSession,
    SessionJournal,
    journal_dir,
    recover_sessions,
)

OPEN_DOC = {"kind": "session-open", "model": "deepar", "rng": {"seed": 5}}


def test_journal_round_trips_open_and_laps(tmp_path):
    directory = str(tmp_path)
    journal = SessionJournal(directory, "sess-000001")
    journal.record_open(OPEN_DOC)
    journal.record_lap(1, [{"car_id": 1, "lap_time": 41.0}])
    journal.record_lap(2, [{"car_id": 1, "lap_time": 42.0}])
    journal.close(remove=False)

    recovered = recover_sessions(directory)
    assert len(recovered) == 1
    session = recovered[0]
    assert isinstance(session, RecoveredSession)
    assert session.session_id == "sess-000001"
    assert session.open_document == OPEN_DOC
    assert [record["lap"] for record in session.laps] == [1, 2]
    assert session.laps[0]["records"] == [{"car_id": 1, "lap_time": 41.0}]
    assert session.torn_records == 0


def test_clean_close_removes_the_journal(tmp_path):
    journal = SessionJournal(str(tmp_path), "sess-000002")
    journal.record_open(OPEN_DOC)
    assert os.path.exists(journal.path)
    journal.close(remove=True)
    assert not os.path.exists(journal.path)
    assert recover_sessions(str(tmp_path)) == []
    journal.close(remove=True)  # double close is harmless


def test_torn_tail_is_dropped_not_fatal(tmp_path):
    journal = SessionJournal(str(tmp_path), "sess-000003")
    journal.record_open(OPEN_DOC)
    journal.record_lap(1, [])
    journal.close(remove=False)
    # simulate a SIGKILL mid-append: a partial record with no newline
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "lap", "lap": 2, "rec')

    [session] = recover_sessions(str(tmp_path))
    assert [record["lap"] for record in session.laps] == [1]
    assert session.torn_records == 1  # the torn lap was never acknowledged


def test_mid_file_corruption_refuses_to_recover(tmp_path):
    journal = SessionJournal(str(tmp_path), "sess-000004")
    journal.record_open(OPEN_DOC)
    journal.record_lap(1, [])
    journal.close(remove=False)
    lines = open(journal.path, encoding="utf-8").read().splitlines()
    lines[0] = lines[0][:10]  # damage the open record, keep the tail intact
    with open(journal.path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="corrupt at line 1"):
        recover_sessions(str(tmp_path))


def test_journal_without_an_open_record_is_deleted(tmp_path):
    # the crash tore even the open append: no session was ever acknowledged
    path = os.path.join(str(tmp_path), f"sess-000005{JOURNAL_SUFFIX}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"kind": "open", "sess')
    assert recover_sessions(str(tmp_path)) == []
    assert not os.path.exists(path)


def test_second_open_record_is_corruption(tmp_path):
    journal = SessionJournal(str(tmp_path), "sess-000006")
    journal.record_open(OPEN_DOC)
    journal.record_open(OPEN_DOC)
    journal.record_lap(1, [])  # keeps the duplicate off the torn-tail path
    journal.close(remove=False)
    with pytest.raises(ValueError, match="second 'open' record"):
        recover_sessions(str(tmp_path))


def test_unknown_record_kinds_are_skipped_forward_compatibly(tmp_path):
    journal = SessionJournal(str(tmp_path), "sess-000007")
    journal.record_open(OPEN_DOC)
    journal._append({"kind": "checkpoint", "data": 1})  # a future build's record
    journal.record_lap(1, [])
    journal.close(remove=False)
    [session] = recover_sessions(str(tmp_path))
    assert [record["lap"] for record in session.laps] == [1]


def test_recover_scans_only_journal_files_sorted(tmp_path):
    directory = str(tmp_path)
    for sid in ("sess-000009", "sess-000008"):
        journal = SessionJournal(directory, sid)
        journal.record_open(dict(OPEN_DOC, session=sid))
        journal.close(remove=False)
    with open(os.path.join(directory, "notes.txt"), "w", encoding="utf-8") as fh:
        fh.write("not a journal")
    recovered = recover_sessions(directory)
    assert [s.session_id for s in recovered] == ["sess-000008", "sess-000009"]
    assert recover_sessions(os.path.join(directory, "missing")) == []


def test_journal_dir_lives_inside_the_store(tmp_path):
    root = str(tmp_path / "store")
    assert journal_dir(root) == os.path.join(root, "_session_journal")


def test_records_are_fsynced_compact_json(tmp_path):
    journal = SessionJournal(str(tmp_path), "sess-000010")
    journal.record_open(OPEN_DOC)
    journal.record_lap(3, [{"car_id": 2}])
    # readable while still open: every append is flushed + fsynced
    lines = open(journal.path, encoding="utf-8").read().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[1]) == {"kind": "lap", "lap": 3, "records": [{"car_id": 2}]}
    journal.close()

# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
def test_compaction_rewrites_the_journal_but_recovery_is_identical(tmp_path):
    directory = str(tmp_path)
    laps = [(lap, [{"car_id": 1, "lap_time": 40.0 + lap}]) for lap in range(1, 13)]

    plain = SessionJournal(directory, "sess-plain")
    plain.record_open(OPEN_DOC)
    compacted = SessionJournal(directory, "sess-compact", compact_every=5)
    compacted.record_open(OPEN_DOC)
    for lap, records in laps:
        plain.record_lap(lap, records)
        compacted.record_lap(lap, records)
    assert plain.compactions == 0 and compacted.compactions == 2

    # the compacted file is 1 open + 1 batch + the 2 laps since compaction;
    # the plain one has one line per lap
    with open(compacted.path, encoding="utf-8") as fh:
        compacted_lines = fh.read().splitlines()
    with open(plain.path, encoding="utf-8") as fh:
        plain_lines = fh.read().splitlines()
    assert len(compacted_lines) == 4 < len(plain_lines) == 13
    assert json.loads(compacted_lines[1])["kind"] == "laps"

    plain.close(remove=False)
    compacted.close(remove=False)
    recovered = {s.session_id: s for s in recover_sessions(directory)}
    assert recovered["sess-plain"].open_document == recovered["sess-compact"].open_document
    assert recovered["sess-plain"].laps == recovered["sess-compact"].laps


def test_compacted_journal_is_removed_on_clean_close(tmp_path):
    journal = SessionJournal(str(tmp_path), "sess-000010", compact_every=2)
    journal.record_open(OPEN_DOC)
    for lap in range(1, 6):
        journal.record_lap(lap, [])
    assert journal.compactions == 2
    journal.close(remove=True)
    assert not os.path.exists(journal.path)
    assert recover_sessions(str(tmp_path)) == []


def test_torn_tail_after_a_compaction_only_loses_the_torn_lap(tmp_path):
    journal = SessionJournal(str(tmp_path), "sess-000011", compact_every=3)
    journal.record_open(OPEN_DOC)
    for lap in range(1, 5):
        journal.record_lap(lap, [{"car_id": 2, "lap_time": 39.5}])
    journal.close(remove=False)
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "lap", "lap": 5, "rec')  # SIGKILL mid-append

    [session] = recover_sessions(str(tmp_path))
    assert [record["lap"] for record in session.laps] == [1, 2, 3, 4]
    assert session.torn_records == 1


def test_load_session_reads_one_journal_by_id(tmp_path):
    directory = str(tmp_path)
    journal = SessionJournal(directory, "sess-000012")
    journal.record_open(OPEN_DOC)
    journal.record_lap(1, [{"car_id": 3}])
    journal.close(remove=False)

    from repro.serving.journal import load_session

    session = load_session(directory, "sess-000012")
    assert session is not None and session.session_id == "sess-000012"
    assert [record["lap"] for record in session.laps] == [1]
    assert load_session(directory, "sess-missing") is None
