"""Byte-identity of the fused decode engine against the stepwise reference.

The fused path (block RNG + ``step_decode`` kernels + hoisted covariates)
must replay the retained per-lap loop bit for bit: same ``stable_matmul``
products, bitwise-equal dense sigmoid, and identical RNG stream consumption
— including when several requests share one ``Generator``.
"""

import numpy as np
import pytest

from repro.models.deep.rankmodel import RankSeqModel
from repro.nn.activations import sigmoid, sigmoid_dense
from repro.nn.inference import recurrent_inference
from repro.serving import FleetForecaster, ForecastRequest, spawn_request_rngs

N_COV = 3


def make_model(backbone="lstm", **kwargs):
    defaults = dict(num_covariates=N_COV, hidden_dim=8, num_layers=2,
                    encoder_length=12, decoder_length=3, rng=0, backbone=backbone)
    defaults.update(kwargs)
    return RankSeqModel(**defaults)


def make_histories(n_cars, n_laps=20, seed=100):
    rng = np.random.default_rng(seed)
    targets = [np.clip(10 + np.cumsum(rng.normal(0, 1, n_laps)), 1, 33) for _ in range(n_cars)]
    covs = [rng.normal(size=(n_laps, N_COV)) for _ in range(n_cars)]
    return targets, covs


def submit(model, targets, covs, decode, mode="exact", horizon=3, n_samples=7,
           seed=9, origins=(19,), shared_rng=False):
    engine = FleetForecaster(model, mode=mode, decode=decode)
    future = np.zeros((horizon, N_COV))
    results = []
    n = len(targets)
    if shared_rng:
        streams = [np.random.default_rng(seed)] * (n * len(origins))
    else:
        streams = spawn_request_rngs(np.random.default_rng(seed), n * len(origins))
    for j, origin in enumerate(origins):
        results.extend(
            engine.submit(
                [
                    ForecastRequest(
                        targets[car][: origin + 1][-12:], covs[car][: origin + 1][-12:],
                        future, n_samples=n_samples,
                        rng=streams[j * n + car], key=car, origin=origin,
                    )
                    for car in range(n)
                ]
            )
        )
    return results


# ----------------------------------------------------------------------
# engine-level parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backbone", ["lstm", "gru"])
@pytest.mark.parametrize("mode", ["exact", "carry"])
def test_fused_matches_stepwise_bitwise(backbone, mode):
    model = make_model(backbone)
    targets, covs = make_histories(5)
    origins = (15, 16, 17)  # carry mode advances cached states between these
    stepwise = submit(model, targets, covs, "stepwise", mode=mode, origins=origins)
    fused = submit(model, targets, covs, "fused", mode=mode, origins=origins)
    assert len(stepwise) == len(fused) == 15
    for a, b in zip(stepwise, fused):
        assert a.shape == b.shape == (7, 3)
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("backbone", ["lstm", "gru"])
def test_fused_matches_stepwise_with_shared_rng_stream(backbone):
    """Several requests drawing from one Generator interleave identically."""
    model = make_model(backbone)
    targets, covs = make_histories(4)
    stepwise = submit(model, targets, covs, "stepwise", shared_rng=True)
    fused = submit(model, targets, covs, "fused", shared_rng=True)
    for a, b in zip(stepwise, fused):
        np.testing.assert_array_equal(a, b)


def test_fused_matches_stepwise_mixed_sample_counts():
    """Uneven per-request sample counts keep the block-RNG layout aligned."""
    model = make_model()
    targets, covs = make_histories(4)
    future = np.zeros((2, N_COV))

    def run(decode):
        engine = FleetForecaster(model, decode=decode)
        streams = spawn_request_rngs(np.random.default_rng(5), 4)
        return engine.submit(
            [
                ForecastRequest(t[-12:], c[-12:], future, n_samples=3 + 2 * i, rng=s)
                for i, (t, c, s) in enumerate(zip(targets, covs, streams))
            ]
        )

    for a, b in zip(run("stepwise"), run("fused")):
        np.testing.assert_array_equal(a, b)


def test_fused_is_the_default_and_decode_arg_is_validated():
    model = make_model()
    assert FleetForecaster(model).decode == "fused"
    with pytest.raises(ValueError, match="decode"):
        FleetForecaster(model, decode="turbo")


# ----------------------------------------------------------------------
# kernel-level parity
# ----------------------------------------------------------------------
def test_sigmoid_dense_bitwise_matches_masked_sigmoid():
    rng = np.random.default_rng(0)
    for shape in [(5,), (64, 3), (300, 24)]:
        x = rng.normal(size=shape) * 6
        np.testing.assert_array_equal(sigmoid_dense(x.copy()), sigmoid(x))
        # in-place with preallocated scratch
        y = x.copy()
        scratch = (np.empty_like(y), np.empty_like(y))
        res = sigmoid_dense(y, out=y, scratch=scratch)
        assert res is y
        np.testing.assert_array_equal(y, sigmoid(x))


@pytest.mark.parametrize("backbone", ["lstm", "gru"])
def test_decode_sequence_matches_inference_step_loop(backbone):
    """The fused ``step_decode`` kernels replay the serving ``step`` bitwise."""
    model = make_model(backbone)
    stack = model.lstm
    stepper = recurrent_inference(stack)
    rng = np.random.default_rng(4)
    x = rng.normal(size=(6, 5, 1 + N_COV))

    states = stepper.zero_state(6)
    outputs = np.empty((6, 5, stack.hidden_dim))
    for t in range(x.shape[1]):
        outputs[:, t, :], states = stepper.step(x[:, t, :], states)

    fused_out, fused_states = stack.decode_sequence(x)
    np.testing.assert_array_equal(fused_out, outputs)
    packed_ref = stack.export_state(states)
    packed_fused = stack.export_state(fused_states)
    np.testing.assert_array_equal(packed_fused, packed_ref)


def test_decode_contexts_do_not_mutate_the_caller_states():
    """``begin_decode`` copies the initial states in; stepping leaves them."""
    model = make_model()
    stack = model.lstm
    states = stack.zero_state(4)
    before = stack.export_state(states).copy()
    ctxs = stack.begin_decode(states)
    rng = np.random.default_rng(1)
    for _ in range(3):
        stack.step_decode(rng.normal(size=(4, 1 + N_COV)), ctxs)
    np.testing.assert_array_equal(stack.export_state(states), before)
