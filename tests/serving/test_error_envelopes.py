"""Wire error envelopes: every failure is a structured, versioned document.

The satellite contract of the docs tree (``docs/wire-protocol.md``): a
client must never have to parse prose or HTML to learn what went wrong.
These tests drive malformed session lap posts and unroutable requests and
assert the full envelope shape — ``schema_version``, ``kind: error`` and
a machine-readable ``{code, message, status}`` body.
"""

import http.client
import json

import pytest

from repro.profiling.server import MODEL_NAME, build_serving_fixture
from repro.serving import ForecastClient, ServerError, wire
from repro.serving.server import ForecastServer, ServerConfig


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("envelope-store"))
    build_serving_fixture(root)
    config = ServerConfig(store=root, port=0, batch_window_ms=1.0)
    with ForecastServer(config) as running:
        yield running


@pytest.fixture()
def client(server):
    return ForecastClient(port=server.port)


@pytest.fixture()
def session(client):
    opened = client.open_session(MODEL_NAME, min_history=12, rng=0)
    yield opened
    try:
        opened.close(drain=False)
    except ServerError:
        pass  # some tests close or never open the server-side session


def _raw(server, method, path, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        connection.request(
            method,
            path,
            body=None if body is None else json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _assert_error_envelope(document, code, status):
    assert document["kind"] == "error"
    assert document["schema_version"] == wire.WIRE_SCHEMA_VERSION
    body = document["error"]
    assert body["code"] == code and body["status"] == status
    assert isinstance(body["message"], str) and body["message"]


# ----------------------------------------------------------------------
# malformed session lap posts
# ----------------------------------------------------------------------
def test_lap_with_non_integer_lap_number(client, session):
    payload = wire.envelope("session-lap", lap="5", records=[])
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", f"/v1/sessions/{session.session_id}/lap", payload)
    assert excinfo.value.code == "malformed_request"
    assert "integer 'lap'" in str(excinfo.value)
    # booleans are not lap numbers either
    payload = wire.envelope("session-lap", lap=True, records=[])
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", f"/v1/sessions/{session.session_id}/lap", payload)
    assert excinfo.value.code == "malformed_request"


def test_lap_with_non_list_records(client, session):
    payload = wire.envelope("session-lap", lap=1, records="car 5 passed car 3")
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", f"/v1/sessions/{session.session_id}/lap", payload)
    assert excinfo.value.code == "malformed_request"
    assert "'records' array" in str(excinfo.value)


def test_lap_with_the_wrong_document_kind(client, session):
    payload = wire.envelope("session-open", lap=1, records=[])
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", f"/v1/sessions/{session.session_id}/lap", payload)
    assert excinfo.value.code == "malformed_request"
    assert "session-lap" in str(excinfo.value)


def test_lap_on_an_unknown_session_is_404(server, client):
    payload = wire.envelope("session-lap", lap=1, records=[])
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", "/v1/sessions/no-such-session/lap", payload)
    assert excinfo.value.code == "unknown_session" and excinfo.value.status == 404
    # and the raw wire document is a full structured envelope
    status, document = _raw(
        server, "POST", "/v1/sessions/no-such-session/lap", payload
    )
    assert status == 404
    _assert_error_envelope(document, "unknown_session", 404)


def test_lap_from_a_newer_schema_is_refused(client, session):
    payload = wire.envelope("session-lap", lap=1, records=[])
    payload["schema_version"] = wire.WIRE_SCHEMA_VERSION + 1
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", f"/v1/sessions/{session.session_id}/lap", payload)
    assert excinfo.value.code == "unsupported_schema"


# ----------------------------------------------------------------------
# unroutable requests
# ----------------------------------------------------------------------
def test_unknown_route_envelope_structure(server):
    status, document = _raw(server, "GET", "/v1/no-such-route")
    assert status == 404
    _assert_error_envelope(document, "unknown_route", 404)
    assert "/v1/no-such-route" in document["error"]["message"]


def test_method_not_allowed_envelope_structure(server):
    # the path exists, the verb does not
    status, document = _raw(server, "DELETE", "/v1/forecast")
    assert status == 405
    _assert_error_envelope(document, "method_not_allowed", 405)
