"""Wire-protocol round trips, edge cases, and schema guards."""

import numpy as np
import pytest

from repro.serving import wire
from repro.serving.requests import ForecastRequest, NamedForecastRequest
from repro.serving.wire import WIRE_SCHEMA_VERSION, WireError
from repro.strategy.optimizer import StrategyOutcome, StrategySweepPoint


def _request(
    length=12,
    target_dim=1,
    horizon=3,
    n_cov=4,
    n_samples=9,
    rng=None,
    key=("Indy500-2018", 7),
    origin=30,
    one_dimensional=False,
):
    gen = np.random.default_rng(3)
    target = gen.normal(size=length if one_dimensional else (length, target_dim))
    return ForecastRequest(
        history_target=target,
        history_covariates=gen.normal(size=(length, n_cov)),
        future_covariates=gen.normal(size=(horizon, n_cov)),
        n_samples=n_samples,
        rng=rng,
        key=key,
        origin=origin,
    )


# ----------------------------------------------------------------------
# arrays
# ----------------------------------------------------------------------
def test_array_round_trip_is_bitwise():
    array = np.random.default_rng(0).normal(size=(5, 3))
    decoded = wire.decode_array(wire.encode_array(array))
    assert decoded.dtype == array.dtype and decoded.shape == array.shape
    np.testing.assert_array_equal(decoded, array)


def test_array_round_trip_int_and_empty():
    ints = np.arange(7, dtype=np.int64)
    np.testing.assert_array_equal(wire.decode_array(wire.encode_array(ints)), ints)
    empty = np.empty((0, 4), dtype=np.float64)
    decoded = wire.decode_array(wire.encode_array(empty))
    assert decoded.shape == (0, 4) and decoded.dtype == np.float64


def test_non_contiguous_arrays_encode_like_their_copies():
    base = np.random.default_rng(1).normal(size=(6, 6))
    views = [base[::2], base.T, base[:, 1:4]]
    for view in views:
        assert not view.flags["C_CONTIGUOUS"]
        assert wire.encode_array(view) == wire.encode_array(np.ascontiguousarray(view))
        np.testing.assert_array_equal(wire.decode_array(wire.encode_array(view)), view)


def test_malformed_array_specs_raise_structured_errors():
    good = wire.encode_array(np.zeros(3))
    with pytest.raises(WireError, match="array spec"):
        wire.decode_array("not a dict")
    with pytest.raises(WireError):
        wire.decode_array({**good, "data": "!!! not base64 !!!"})
    with pytest.raises(WireError, match="bytes"):
        wire.decode_array({**good, "shape": [4]})  # byte count mismatch
    with pytest.raises(WireError, match="object dtype"):
        wire.decode_array({**good, "dtype": "|O"})
    with pytest.raises(WireError):
        wire.decode_array({"dtype": "float64"})  # missing fields


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
def test_rng_seed_round_trip_reproduces_draws():
    spec = wire.rng_to_wire(42)
    assert spec == {"seed": 42}
    a = wire.rng_from_wire(spec).standard_normal(8)
    b = np.random.default_rng(42).standard_normal(8)
    np.testing.assert_array_equal(a, b)


def test_rng_state_round_trip_continues_stream_bitwise():
    gen = np.random.default_rng(7)
    gen.standard_normal(13)  # advance: the wire form must capture mid-stream state
    spec = wire.rng_to_wire(gen)
    clone = wire.rng_from_wire(spec)
    np.testing.assert_array_equal(clone.standard_normal(16), gen.standard_normal(16))


def test_rng_required_and_malformed():
    assert wire.rng_from_wire(None) is None
    with pytest.raises(WireError, match="reproducible"):
        wire.rng_from_wire(None, required=True)
    with pytest.raises(WireError):
        wire.rng_from_wire({"seed": "nope"})
    with pytest.raises(WireError):
        wire.rng_from_wire({"neither": 1})
    with pytest.raises(WireError):
        wire.rng_from_wire({"state": {"bit_generator": "NoSuchBitGen"}})


# ----------------------------------------------------------------------
# forecast requests
# ----------------------------------------------------------------------
def test_request_round_trip_preserves_arrays_key_origin_and_draws():
    request = _request(rng=np.random.default_rng(5))
    clone = wire.request_from_wire(wire.request_to_wire(request))
    np.testing.assert_array_equal(clone.target, request.target)
    np.testing.assert_array_equal(clone.history_covariates, request.history_covariates)
    np.testing.assert_array_equal(clone.future_covariates, request.future_covariates)
    assert clone.n_samples == request.n_samples
    assert clone.key == request.key and isinstance(clone.key, tuple)
    assert clone.origin == request.origin
    assert clone.warmup_key() == request.warmup_key()
    np.testing.assert_array_equal(
        clone.rng.standard_normal(9), request.rng.standard_normal(9)
    )


def test_one_dimensional_history_target_round_trips_to_column():
    request = _request(one_dimensional=True, rng=1)
    assert request.target.shape == (12, 1)
    clone = wire.request_from_wire(wire.request_to_wire(request))
    np.testing.assert_array_equal(clone.target, request.target)


def test_empty_future_covariates_round_trip():
    request = _request(horizon=0, rng=2)
    assert request.horizon == 0
    clone = wire.request_from_wire(wire.request_to_wire(request))
    assert clone.horizon == 0
    assert clone.future_covariates.shape == request.future_covariates.shape


def test_request_without_rng_refused_when_required():
    document = wire.request_to_wire(_request(rng=None))
    assert document["rng"] is None
    assert wire.request_from_wire(document).rng is None
    with pytest.raises(WireError, match="reproducible"):
        wire.request_from_wire(document, require_rng=True)


def test_request_missing_fields_and_bad_shapes():
    document = wire.request_to_wire(_request(rng=0))
    for field in ("history_target", "history_covariates", "future_covariates", "n_samples"):
        broken = {k: v for k, v in document.items() if k != field}
        with pytest.raises(WireError, match="missing"):
            wire.request_from_wire(broken)
    bad = dict(document)
    bad["history_covariates"] = wire.encode_array(np.zeros(3))  # 1-D: invalid
    with pytest.raises(WireError, match="invalid forecast request"):
        wire.request_from_wire(bad)


def test_named_batch_round_trip_and_guards():
    named = [
        NamedForecastRequest("model-a", _request(rng=0)),
        NamedForecastRequest("model-b", _request(rng=1)),
    ]
    document = wire.forecast_batch_to_wire(named)
    clones = wire.forecast_batch_from_wire(document)
    assert [c.model for c in clones] == ["model-a", "model-b"]
    with pytest.raises(WireError, match="non-empty string"):
        wire.named_request_from_wire({"model": "", "request": {}})
    with pytest.raises(WireError, match="array"):
        wire.forecast_batch_from_wire(wire.envelope("forecast-batch", requests="nope"))


# ----------------------------------------------------------------------
# results (including per-request error slots)
# ----------------------------------------------------------------------
def test_results_round_trip_mixed_success_and_error():
    samples = np.random.default_rng(2).normal(size=(5, 2))
    failure = WireError("unknown_model", "no such model", status=404)
    document = wire.results_to_wire([samples, failure])
    decoded = wire.results_from_wire(document)
    np.testing.assert_array_equal(decoded[0], samples)
    assert isinstance(decoded[1], WireError)
    assert decoded[1].code == "unknown_model" and decoded[1].status == 404


# ----------------------------------------------------------------------
# schema guards and error envelopes
# ----------------------------------------------------------------------
def test_unknown_schema_version_is_refused():
    document = wire.forecast_batch_to_wire([])
    document["schema_version"] = WIRE_SCHEMA_VERSION + 1
    with pytest.raises(WireError) as excinfo:
        wire.forecast_batch_from_wire(document)
    assert excinfo.value.code == "unsupported_schema"


def test_missing_or_bad_schema_version_is_malformed():
    for document in ({}, {"schema_version": "1"}, {"schema_version": True}, [1, 2]):
        with pytest.raises(WireError) as excinfo:
            wire.check_envelope(document)
        assert excinfo.value.code == "malformed_request"


def test_kind_mismatch_is_malformed():
    with pytest.raises(WireError, match="forecast-batch"):
        wire.check_envelope(wire.envelope("forecast-results"), kind="forecast-batch")


def test_error_envelope_round_trip():
    status, document = wire.error_to_wire(
        WireError("model_pinned", "busy", status=409, detail={"model": "a"})
    )
    assert status == 409 and document["kind"] == "error"
    with pytest.raises(WireError) as excinfo:
        wire.raise_for_error(document)
    assert excinfo.value.code == "model_pinned"
    assert excinfo.value.status == 409
    assert excinfo.value.detail == {"model": "a"}
    # non-error documents pass through untouched
    assert wire.raise_for_error({"kind": "health"}) == {"kind": "health"}


def test_internal_errors_become_500_envelopes():
    status, document = wire.error_to_wire(RuntimeError("boom"))
    assert status == 500
    assert document["error"]["code"] == "internal_error"


# ----------------------------------------------------------------------
# sweep documents
# ----------------------------------------------------------------------
def test_sweep_points_round_trip_is_exact():
    points = [
        StrategySweepPoint(
            origin=31,
            current_rank=4.0,
            outcomes=[
                StrategyOutcome(
                    pit_in_laps=2,
                    expected_final_rank=3.337000000000001,
                    median_final_rank=3.0,
                    p_gain=0.13,
                    p_lose=1.0 / 3.0,
                    rank_samples_std=0.7071067811865476,
                )
            ],
        )
    ]
    clones = wire.sweep_points_from_wire(wire.sweep_points_to_wire(points))
    assert clones[0].origin == 31 and clones[0].current_rank == 4.0
    assert clones[0].outcomes == points[0].outcomes  # dataclass float equality: exact


def test_sweep_request_round_trip_and_guards():
    from repro.data.features import CarFeatureSeries

    gen = np.random.default_rng(0)
    series = CarFeatureSeries(
        race_id="Indy500-2018",
        event="Indy500",
        year=2018,
        car_id=9,
        laps=np.arange(1, 41, dtype=np.int64),
        rank=gen.integers(1, 33, size=40).astype(np.float64),
        lap_time=gen.normal(90, 3, size=40),
        time_behind_leader=gen.normal(10, 3, size=40),
        covariates=gen.normal(size=(40, 9)),
    )
    document = wire.sweep_request_to_wire(
        "oracle", series, origins=[30, 31], horizon=5, n_samples=8, rng=17
    )
    parsed = wire.sweep_request_from_wire(document)
    assert parsed["model"] == "oracle" and parsed["origins"] == [30, 31]
    np.testing.assert_array_equal(parsed["series"].covariates, series.covariates)
    np.testing.assert_array_equal(
        parsed["rng"].standard_normal(4), np.random.default_rng(17).standard_normal(4)
    )
    document = wire.sweep_request_to_wire("oracle", series, [30], 5, rng=0)
    document["origins"] = [30, "x"]
    with pytest.raises(WireError, match="integers"):
        wire.sweep_request_from_wire(document)
