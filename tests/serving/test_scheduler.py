"""MicroBatchScheduler: cross-client coalescing with byte-identical results."""

import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import CurRankForecaster, DeepARForecaster
from repro.serving import ForecastService, NamedForecastRequest
from repro.serving.scheduler import MicroBatchScheduler
from repro.simulation import RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=200,
)


@pytest.fixture(scope="module")
def tiny_series():
    track = replace(track_for_year("Indy500", 2018), total_laps=70, num_cars=8)
    race = RaceSimulator(track, event="Indy500", year=2017, seed=13).run()
    return build_race_features(race)


@pytest.fixture(scope="module")
def store(tmp_path_factory, tiny_series):
    root = str(tmp_path_factory.mktemp("scheduler-store"))
    store = ArtifactStore(root)
    model = DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:5])
    store.save_model("deepar", model)
    store.save_model("naive", CurRankForecaster().fit(tiny_series[:5]))
    return store


def _named(forecaster, series, origin, seed, n_samples=6, horizon=3):
    return NamedForecastRequest(
        "deepar",
        forecaster._fleet_request(
            series,
            origin,
            forecaster._future_covariates(series, origin, horizon),
            n_samples,
            np.random.default_rng(seed),
        ),
    )


def test_three_concurrent_clients_coalesce_into_one_byte_identical_batch(store, tiny_series):
    service = ForecastService(store, capacity=2)
    forecaster = service.load("deepar").forecaster
    series = tiny_series[0]

    client_requests = {
        client: [_named(forecaster, series, 20 + client, 100 * client + i) for i in range(4)]
        for client in range(3)
    }
    # reference: every client's requests submitted directly, client by client
    reference = {
        client: service.submit(
            [
                _named(forecaster, series, 20 + client, 100 * client + i)
                for i in range(4)
            ]
        )
        for client in range(3)
    }

    scheduler = MicroBatchScheduler(service.submit, window=1.0, max_batch=64)
    results: dict = {}
    barrier = threading.Barrier(3)

    def run_client(client):
        barrier.wait()
        results[client] = scheduler.submit(client_requests[client])

    threads = [threading.Thread(target=run_client, args=(c,)) for c in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    scheduler.close()

    for client in range(3):
        assert len(results[client]) == 4
        for got, expected in zip(results[client], reference[client]):
            np.testing.assert_array_equal(got, expected)

    stats = scheduler.stats
    assert stats["requests"] == 12
    assert stats["batches"] == 1, stats  # one coalesced fleet pass for all clients
    assert stats["coalesced_batches"] == 1
    assert stats["max_batch_requests"] == 12


def test_max_batch_splits_but_results_are_unchanged(store, tiny_series):
    service = ForecastService(store, capacity=2)
    forecaster = service.load("deepar").forecaster
    series = tiny_series[0]
    requests = [_named(forecaster, series, 22, seed) for seed in range(5)]
    reference = service.submit([_named(forecaster, series, 22, seed) for seed in range(5)])

    with MicroBatchScheduler(service.submit, window=0.05, max_batch=2) as scheduler:
        results = scheduler.submit(requests)
        stats = scheduler.stats
    for got, expected in zip(results, reference):
        np.testing.assert_array_equal(got, expected)
    assert stats["batches"] >= 3  # ceil(5 / 2)
    assert stats["flush_full"] >= 2


def test_bad_request_is_isolated_from_its_batch_mates(store, tiny_series):
    service = ForecastService(store, capacity=1)
    forecaster = service.load("deepar").forecaster
    series = tiny_series[0]
    good = _named(forecaster, series, 20, 7)
    bad = NamedForecastRequest("no-such-model", good.request)
    reference = service.submit([_named(forecaster, series, 20, 7)])

    with MicroBatchScheduler(service.submit, window=0.02) as scheduler:
        settled = scheduler.submit_settled([good, bad])
        stats = scheduler.stats
    np.testing.assert_array_equal(settled[0], reference[0])
    assert isinstance(settled[1], Exception)
    assert stats["isolated_retries"] == 2

    # submit() surfaces the failure as an exception
    with MicroBatchScheduler(service.submit, window=0.02) as scheduler:
        with pytest.raises(Exception, match="no-such-model"):
            scheduler.submit([bad])


def test_retry_after_partial_batch_failure_replays_consumed_rng_streams(store, tiny_series):
    """A failing coalesced batch may already have consumed some requests'
    generators (the per-model engine passes run sequentially before the
    failure) — the isolation retry must restore their states, or the
    retried results silently stop matching direct submission."""
    service = ForecastService(store, capacity=2)
    forecaster = service.load("deepar").forecaster
    series = tiny_series[0]
    reference = service.submit([_named(forecaster, series, 20, 7)])

    good = _named(forecaster, series, 20, 7)
    # "naive" loads fine but has no fleet engine, so service.submit raises
    # only after deepar's pass already ran (and consumed good's generator)
    bad = NamedForecastRequest("naive", _named(forecaster, series, 20, 8).request)
    with MicroBatchScheduler(service.submit, window=0.02) as scheduler:
        settled = scheduler.submit_settled([good, bad])
    np.testing.assert_array_equal(settled[0], reference[0])
    assert isinstance(settled[1], TypeError)


def test_empty_submit_and_close_semantics(store):
    service = ForecastService(store, capacity=1)
    scheduler = MicroBatchScheduler(service.submit, window=0.01)
    assert scheduler.submit([]) == []
    scheduler.close()
    scheduler.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        scheduler.submit([object()])


def test_parameter_validation(store):
    service = ForecastService(store, capacity=1)
    with pytest.raises(ValueError):
        MicroBatchScheduler(service.submit, window=-1.0)
    with pytest.raises(ValueError):
        MicroBatchScheduler(service.submit, max_batch=0)
