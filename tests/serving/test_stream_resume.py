"""Torn scenario streams: structured errors, deterministic resume, framing."""

import json
import socket
import threading

import pytest

from repro.scenarios import parse_scenario
from repro.serving import ServerError, wire
from repro.serving.client import ForecastClient
from repro.serving.faults import FaultPlan, FaultSpec
from repro.serving.resilience import RetryPolicy
from repro.serving.server import ForecastServer, ServerConfig
from repro.serving.wire import WireError

TINY = {
    "scenario": "resume-tiny",
    "kind": "race",
    "races": [{"event": "Indy500", "year": 2018}],
    "points": [{"track_total_laps": 30, "track_num_cars": 6}],
    "replicas": 3,
}
#: TINY emits start + 3 races + summary = 5 stream events
TINY_EVENTS = 5

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05, seed=0)


def _server(tmp_path, **overrides):
    config = ServerConfig(store=str(tmp_path), port=0, batch_window_ms=1.0, **overrides)
    return ForecastServer(config)


def _docs(events):
    return [
        payload if kind == "start" else payload.to_doc() for kind, payload in events
    ]


# ----------------------------------------------------------------------
# wire schema
# ----------------------------------------------------------------------
def test_resume_from_round_trips_and_validates():
    document = wire.scenario_request_to_wire(TINY, seed=1)
    assert "resume_from" not in document  # omitted when zero
    assert wire.resume_from_wire(document) == 0
    resumed = wire.scenario_request_to_wire(TINY, seed=1, resume_from=3)
    assert resumed["resume_from"] == 3
    assert wire.resume_from_wire(resumed) == 3
    for bad in (-1, True, "3", 1.5):
        with pytest.raises(WireError, match="resume_from"):
            wire.resume_from_wire(dict(document, resume_from=bad))


# ----------------------------------------------------------------------
# truncation + resume against a real gateway
# ----------------------------------------------------------------------
def test_truncated_stream_is_a_structured_error_not_a_hang(tmp_path):
    plan = FaultPlan(
        [FaultSpec(kind="truncate", route=r"POST /v1/scenarios", at=0, after_events=2)]
    )
    with _server(tmp_path, fault_plan=plan) as server:
        client = ForecastClient(port=server.port, timeout_s=10.0)  # no retry
        events = []
        with pytest.raises(ServerError) as excinfo:
            for document in client.scenario_stream(TINY, seed=5):
                events.append(document)
        assert excinfo.value.code == "truncated_stream"
        assert excinfo.value.status == 503
        assert len(events) == 2  # everything before the cut was delivered


def test_resumed_stream_is_event_for_event_identical(tmp_path):
    plan = FaultPlan(
        [
            # first request torn after 2 events; the resumed second request
            # torn again after 1 more; the third finishes the stream
            FaultSpec(kind="truncate", route=r"POST /v1/scenarios", at=0, after_events=2),
            FaultSpec(kind="truncate", route=r"POST /v1/scenarios", at=1, after_events=1),
        ]
    )
    with _server(tmp_path) as server:
        clean = list(ForecastClient(port=server.port).run_scenario_iter(TINY, seed=7))
    with _server(tmp_path, fault_plan=plan) as server:
        resumed_client = ForecastClient(port=server.port, retry=FAST_RETRY)
        resumed = list(resumed_client.run_scenario_iter(TINY, seed=7))
        assert server.gateway.faults.fired == 2
    assert [kind for kind, _ in clean] == ["start", "race", "race", "race", "summary"]
    assert [kind for kind, _ in resumed] == [kind for kind, _ in clean]
    # no duplicates, no holes: the stitched stream equals the unbroken one
    assert _docs(resumed) == _docs(clean)


def test_resume_from_skips_server_side(tmp_path):
    """The gateway re-runs deterministically and suppresses delivered events."""
    with _server(tmp_path) as server:
        client = ForecastClient(port=server.port)
        full = list(client.scenario_stream(TINY, seed=9))
        tail = list(client.scenario_stream(TINY, seed=9, resume_from=3))
    assert len(full) == TINY_EVENTS
    assert tail == full[3:]


def test_exhausted_retries_surface_the_truncation(tmp_path):
    # every request torn: even a retrying client must eventually report it
    plan = FaultPlan(
        [FaultSpec(kind="truncate", route=r"POST /v1/scenarios", at=0, count=99, after_events=1)]
    )
    with _server(tmp_path, fault_plan=plan) as server:
        client = ForecastClient(port=server.port, retry=FAST_RETRY)
        with pytest.raises(ServerError) as excinfo:
            list(client.run_scenario_iter(TINY, seed=3))
        assert excinfo.value.code == "truncated_stream"


# ----------------------------------------------------------------------
# hostile framing (raw-socket server, no gateway at all)
# ----------------------------------------------------------------------
def _raw_http_server(response_bytes):
    """One-shot TCP server that answers any request with fixed bytes."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def run():
        connection, _ = listener.accept()
        try:
            connection.recv(65536)
            connection.sendall(response_bytes)
        finally:
            connection.close()
            listener.close()

    threading.Thread(target=run, daemon=True).start()
    return listener.getsockname()[1]


def _chunked(lines):
    body = b""
    for line in lines:
        payload = line + b"\n"
        body += f"{len(payload):x}\r\n".encode() + payload + b"\r\n"
    return body


_HEADERS = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/x-ndjson\r\n"
    b"Transfer-Encoding: chunked\r\n\r\n"
)


def test_garbled_ndjson_line_is_a_structured_error():
    port = _raw_http_server(_HEADERS + _chunked([b"this is not json"]) + b"0\r\n\r\n")
    client = ForecastClient(port=port, timeout_s=5.0)
    with pytest.raises(ServerError) as excinfo:
        list(client.scenario_stream(TINY, seed=0))
    assert excinfo.value.code == "malformed_response"  # corrupt, not retryable


def test_malformed_chunk_framing_is_a_structured_error():
    # "ZZZ" is not a chunk-size line: http.client chokes mid-decode
    port = _raw_http_server(_HEADERS + b"ZZZ\r\nnope\r\n")
    client = ForecastClient(port=port, timeout_s=5.0)
    with pytest.raises(ServerError) as excinfo:
        list(client.scenario_stream(TINY, seed=0))
    assert excinfo.value.code == "truncated_stream"


def test_stream_cut_without_terminal_chunk_is_truncated():
    start = wire.scenario_start_to_wire(parse_scenario(TINY), 0, 3)
    port = _raw_http_server(_HEADERS + _chunked([json.dumps(start).encode()]))
    client = ForecastClient(port=port, timeout_s=5.0)
    events = []
    with pytest.raises(ServerError) as excinfo:
        for document in client.scenario_stream(TINY, seed=0):
            events.append(document)
    assert excinfo.value.code == "truncated_stream"
    assert len(events) == 1  # the valid prefix was delivered first
