"""Unit tests of the resilience primitives (no HTTP, injectable clocks)."""

import pytest

from repro.serving.resilience import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    IdempotencyCache,
    OverloadedError,
    RetryPolicy,
    sleep_schedule,
    validate_idempotency_key,
)
from repro.serving.wire import WireError


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
def test_retry_policy_schedule_is_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.5, seed=7)
    first = list(policy.delays())
    second = list(policy.delays())
    assert first == second  # seeded jitter: same schedule every run
    assert len(first) == 4  # attempts - 1 sleeps
    for attempt, delay in enumerate(first):
        raw = min(0.1 * 2.0**attempt, 0.5)
        assert raw * 0.5 <= delay <= raw  # equal jitter keeps half the backoff
    assert list(RetryPolicy(seed=1).delays()) != list(RetryPolicy(seed=2).delays())


def test_retry_policy_validation_and_retryable_codes():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    assert RetryPolicy.retryable_status(429)
    assert RetryPolicy.retryable_status(503)
    assert RetryPolicy.retryable_status(500, "internal_error")
    assert not RetryPolicy.retryable_status(400, "invalid_request")
    assert not RetryPolicy.retryable_status(404, "unknown_model")
    assert RetryPolicy.retryable_status(200, "overloaded")  # code wins
    assert sleep_schedule(None) == []


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_deadline_expires_on_the_injected_clock():
    clock = FakeClock()
    deadline = Deadline.after(1.0, clock=clock)
    assert not deadline.expired and deadline.remaining() == pytest.approx(1.0)
    deadline.check("work")  # within budget: no raise
    clock.advance(1.5)
    assert deadline.expired
    with pytest.raises(DeadlineExceededError) as excinfo:
        deadline.check("work")
    assert excinfo.value.code == "deadline_exceeded"
    assert excinfo.value.status == 504


def test_deadline_from_ms_validates_the_wire_field():
    clock = FakeClock()
    assert Deadline.from_ms(None) is None
    deadline = Deadline.from_ms(250, clock=clock)
    assert deadline.remaining() == pytest.approx(0.25)
    for bad in (0, -5, True, "100"):
        with pytest.raises(WireError) as excinfo:
            Deadline.from_ms(bad)
        assert excinfo.value.code == "malformed_request"


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
def test_breaker_opens_after_threshold_and_recovers_via_half_open_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()

    breaker.record_failure()
    breaker.record_failure()
    assert breaker.allow()  # still under threshold
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert 0 < breaker.retry_after_ms() <= 10_000

    clock.advance(10.0)  # cooldown elapsed: one half-open probe is admitted
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.retry_after_ms() == 0


def test_breaker_failed_probe_reopens_the_cooldown_window():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(5.0)
    assert breaker.allow()  # the probe
    breaker.record_failure()  # probe failed: straight back to open
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    described = breaker.describe()
    assert described["state"] == "open" and described["trips"] == 2


def test_circuit_open_error_carries_retry_after():
    error = CircuitOpenError("open", retry_after_ms=1234)
    assert error.code == "circuit_open" and error.status == 503
    assert error.detail["retry_after_ms"] == 1234


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def test_admission_sheds_past_the_limit_with_retry_hint():
    clock = FakeClock()
    controller = AdmissionController(limit=2, clock=clock)
    first = controller.admit("a")
    second = controller.admit("b")
    assert controller.in_flight == 2 and controller.queue_depth == 1
    with pytest.raises(OverloadedError) as excinfo:
        controller.admit("c")
    assert excinfo.value.code == "overloaded" and excinfo.value.status == 429
    assert excinfo.value.detail["retry_after_ms"] >= 1

    clock.advance(0.2)
    first.release()
    second.release()
    assert controller.in_flight == 0
    with controller.admit("d"):
        assert controller.in_flight == 1
    stats = controller.stats
    assert stats == {"admitted": 3, "rejected": 1, "completed": 3}
    described = controller.describe()
    assert described["limit"] == 2 and described["in_flight"] == 0


def test_admission_release_is_idempotent_and_exception_safe():
    controller = AdmissionController(limit=1)
    with pytest.raises(RuntimeError):
        with controller.admit():
            raise RuntimeError("work failed")
    assert controller.in_flight == 0  # the slot came back despite the raise
    slot = controller.admit()
    slot.release()
    slot.release()  # double release must not underflow
    assert controller.in_flight == 0


# ----------------------------------------------------------------------
# idempotency cache
# ----------------------------------------------------------------------
def test_idempotency_cache_replays_and_evicts_lru():
    cache = IdempotencyCache(capacity=2)
    assert cache.get(None) is None and len(cache) == 0
    cache.put("a", 200, {"kind": "x"})
    cache.put("b", 200, {"kind": "y"})
    assert cache.get("a") == (200, {"kind": "x"})  # refreshes 'a'
    cache.put("c", 200, {"kind": "z"})  # evicts 'b', the LRU entry
    assert cache.get("b") is None
    assert cache.get("a") is not None and cache.get("c") is not None
    assert cache.stats["hits"] == 3 and cache.stats["misses"] == 1


def test_idempotency_key_validation():
    assert validate_idempotency_key(None) is None
    assert validate_idempotency_key("k-1") == "k-1"
    for bad in ("", 42, "x" * 257):
        with pytest.raises(WireError) as excinfo:
            validate_idempotency_key(bad)
        assert excinfo.value.code == "malformed_request"
