"""RaceSession / SessionManager: lap-streamed forecasts match full replays."""

from dataclasses import replace

import numpy as np
import pytest

from repro.data import build_race_features
from repro.models import DeepARForecaster
from repro.serving.sessions import SessionManager
from repro.simulation import LiveRaceForecaster, RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def race_and_forecaster():
    track = replace(track_for_year("Indy500", 2018), total_laps=55, num_cars=8)
    race = RaceSimulator(track, event="Indy500", year=2019, seed=9).run()
    series = build_race_features(race)
    forecaster = DeepARForecaster(encoder_length=12, decoder_length=2, hidden_dim=8,
                                  epochs=1, batch_size=32, max_train_windows=100, seed=0)
    forecaster.fit(series[:4])
    return race, series, forecaster


def _live(forecaster, seed=0, **kwargs):
    kwargs.setdefault("horizon", 2)
    kwargs.setdefault("n_samples", 5)
    kwargs.setdefault("min_history", 12)
    return LiveRaceForecaster(forecaster, rng=seed, **kwargs)


def _assert_forecasts_equal(got, reference):
    assert [origin for origin, _ in got] == [origin for origin, _ in reference]
    for (origin, f1), (_, f2) in zip(got, reference):
        assert sorted(f1) == sorted(f2)
        for car_id in f1:
            np.testing.assert_array_equal(f1[car_id], f2[car_id])


def test_lap_streamed_session_matches_full_feature_replay(race_and_forecaster):
    """The acceptance gate: streaming laps == forecast_at over the finished race."""
    race, series, forecaster = race_and_forecaster

    live = _live(forecaster, seed=0)
    session = live.open_session(
        event=race.event, year=race.year, race_id=race.race_id, delay=4, start=14
    )
    streamed = []
    for lap, records in race.iter_laps():
        streamed.extend(session.observe_lap(lap, records))
    streamed.extend(session.finish())

    forecaster.fleet_engine("carry").reset_cache()
    reference_live = _live(forecaster, seed=0)
    reference = []
    # the open-ended session drains to the stream bound: the last origin
    # whose whole horizon stays inside the feed (num_laps - horizon - 1)
    for origin in range(14, race.num_laps - reference_live.horizon):
        forecasts = reference_live.forecast_at(series, origin)
        if forecasts:
            reference.append((origin, forecasts))

    _assert_forecasts_equal(streamed, reference)
    assert len(streamed) > 20


def test_stream_is_the_session_core_and_respects_stride(race_and_forecaster):
    race, _, forecaster = race_and_forecaster
    live = _live(forecaster, seed=1)
    origins = [origin for origin, _ in live.stream(race, start=14, stop=24, stride=5)]
    assert origins == [14, 19, 24]


def test_session_emits_nothing_before_the_delay(race_and_forecaster):
    race, _, forecaster = race_and_forecaster
    session = _live(forecaster, seed=2).open_session(delay=4, start=14)
    feed = race.iter_laps()
    emitted = []
    for _ in range(18):  # laps 1..18 < start + 1 + delay = 19
        emitted.extend(session.observe_lap(*next(feed)))
    assert emitted == []
    emitted.extend(session.observe_lap(*next(feed)))  # lap 19 finalises origin 14
    assert [origin for origin, _ in emitted] == [14]
    assert session.next_origin == 15


def test_session_rejects_delay_below_shift_lag(race_and_forecaster):
    _, _, forecaster = race_and_forecaster
    with pytest.raises(ValueError, match="shift lag"):
        _live(forecaster).open_session(delay=1)


def test_session_rejects_out_of_order_laps(race_and_forecaster):
    race, _, forecaster = race_and_forecaster
    session = _live(forecaster).open_session()
    feed = race.iter_laps()
    lap, records = next(feed)
    session.observe_lap(lap, records)
    with pytest.raises(ValueError, match="increasing order"):
        session.observe_lap(lap, records)


def test_session_stop_bounds_the_origins(race_and_forecaster):
    race, _, forecaster = race_and_forecaster
    session = _live(forecaster, seed=3).open_session(start=14, stop=16, delay=4)
    emitted = []
    for lap, records in race.iter_laps():
        emitted.extend(session.observe_lap(lap, records))
    emitted.extend(session.finish())
    assert [origin for origin, _ in emitted] == [14, 15, 16]


def test_open_ended_finish_respects_the_stream_horizon_bound(race_and_forecaster):
    """Draining a stop=None session must not emit origins whose forecast
    horizon extends past the observed feed — the same bound stream uses."""
    race, _, forecaster = race_and_forecaster
    session = _live(forecaster, seed=4).open_session(
        event=race.event, year=race.year, race_id=race.race_id, start=14
    )
    emitted = []
    for lap, records in race.iter_laps():
        emitted.extend(session.observe_lap(lap, records))
    emitted.extend(session.finish())
    streamed = list(_live(forecaster, seed=4).stream(race, start=14))
    assert [origin for origin, _ in emitted] == [origin for origin, _ in streamed]


def test_session_manager_lifecycle(race_and_forecaster):
    race, _, forecaster = race_and_forecaster
    manager = SessionManager(limit=2)
    first = manager.open(_live(forecaster).open_session(), model="deepar")
    second = manager.open(_live(forecaster).open_session(), model="deepar")
    assert len(manager) == 2
    assert manager.get(first.session_id) is first
    with pytest.raises(RuntimeError, match="session limit"):
        manager.open(_live(forecaster).open_session(), model="deepar")
    described = manager.describe()
    assert {d["session"] for d in described} == {first.session_id, second.session_id}
    assert manager.close(first.session_id) is first
    with pytest.raises(KeyError):
        manager.get(first.session_id)
    with pytest.raises(KeyError):
        manager.close(first.session_id)
    assert [m.session_id for m in manager.close_all()] == [second.session_id]
    assert len(manager) == 0
