"""Tests for the warm-up state cache (LRU order, invalidation, counters)."""

import numpy as np
import pytest

from repro.models.deep.rankmodel import RankSeqModel
from repro.serving import FleetForecaster, ForecastRequest, spawn_request_rngs
from repro.serving.cache import CachedWarmup, WarmupStateCache

N_COV = 3


def make_entry(origin=5):
    return CachedWarmup(
        origin=origin,
        scale=np.ones(1),
        packed_state=np.zeros((2, 2, 1, 4)),
        z_last=np.zeros(1),
    )


# ----------------------------------------------------------------------
# unit behaviour
# ----------------------------------------------------------------------
def test_lru_evicts_oldest_first():
    cache = WarmupStateCache(max_entries=3)
    for key in "abc":
        cache.put(key, make_entry())
    cache.put("d", make_entry())
    assert "a" not in cache and len(cache) == 3
    assert cache.evictions == 1
    cache.put("e", make_entry())
    assert "b" not in cache and {"c", "d", "e"} == set(cache._entries)


def test_get_refreshes_recency():
    cache = WarmupStateCache(max_entries=2)
    cache.put("a", make_entry())
    cache.put("b", make_entry())
    assert cache.get("a") is not None  # "a" becomes most recent
    cache.put("c", make_entry())       # evicts "b", not "a"
    assert "a" in cache and "b" not in cache


def test_put_existing_key_updates_and_refreshes():
    cache = WarmupStateCache(max_entries=2)
    cache.put("a", make_entry(origin=1))
    cache.put("b", make_entry(origin=2))
    cache.put("a", make_entry(origin=9))  # refresh, no eviction
    assert len(cache) == 2 and cache.evictions == 0
    cache.put("c", make_entry())
    assert "b" not in cache
    assert cache.get("a").origin == 9


def test_invalidate_single_key_and_full_clear():
    cache = WarmupStateCache(max_entries=4)
    for key in "abc":
        cache.put(key, make_entry())
    cache.invalidate("b")
    assert "b" not in cache and len(cache) == 2
    cache.invalidate("missing")  # no-op, no raise
    cache.invalidate()
    assert len(cache) == 0
    # counters survive a clear (they describe the cache's lifetime)
    assert cache.get("a") is None
    assert cache.misses >= 1


def test_hit_miss_counters_and_stats_dict():
    cache = WarmupStateCache(max_entries=2)
    assert cache.get("a") is None
    cache.put("a", make_entry())
    assert cache.get("a") is not None
    stats = cache.stats()
    assert stats == {"entries": 1, "hits": 1, "misses": 1, "carries": 0, "evictions": 0}


# ----------------------------------------------------------------------
# counters under a rolling-origin engine workload
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(3)
    n_cars, n_laps = 6, 24
    targets = [np.clip(10 + np.cumsum(rng.normal(0, 1, n_laps)), 1, 33) for _ in range(n_cars)]
    covs = [rng.normal(size=(n_laps, N_COV)) for _ in range(n_cars)]
    model = RankSeqModel(num_covariates=N_COV, hidden_dim=8, num_layers=2,
                         encoder_length=12, decoder_length=2, rng=0)
    return model, targets, covs


def _submit_rolling(engine, targets, covs, origins, cars):
    streams = spawn_request_rngs(np.random.default_rng(11), len(cars) * len(origins))
    future = np.zeros((2, N_COV))
    for j, origin in enumerate(origins):
        engine.submit(
            [
                ForecastRequest(
                    targets[car][origin + 1 - 12 : origin + 1],
                    covs[car][origin + 1 - 12 : origin + 1],
                    future, n_samples=4,
                    rng=streams[j * len(cars) + car], key=car, origin=origin,
                )
                for car in cars
            ]
        )


def test_rolling_origin_counters(workload):
    model, targets, covs = workload
    engine = FleetForecaster(model, mode="carry")
    cars = list(range(6))
    origins = [12, 13, 14, 15]
    _submit_rolling(engine, targets, covs, origins, cars)
    stats = engine.stats
    # first origin misses for every car, each later origin carries the state
    assert stats["cache_misses"] == 6
    assert stats["cache_hits"] == 6 * 3
    assert stats["cache_carries"] == 6 * 3
    assert stats["cache_evictions"] == 0
    assert stats["cache_entries"] == 6
    # full warm-up once per car, then one incremental step per later origin
    assert stats["warmup_steps"] == 11 + 3


def test_rolling_origin_with_tiny_cache_evicts_and_recovers(workload):
    model, targets, covs = workload
    engine = FleetForecaster(model, mode="carry", cache_size=3)
    cars = list(range(6))
    origins = [12, 13, 14]
    _submit_rolling(engine, targets, covs, origins, cars)
    stats = engine.stats
    # only 3 of 6 cars fit: the other 3 re-run a full warm-up every origin
    assert stats["cache_entries"] == 3
    assert stats["cache_evictions"] == 6 * 3 - 3
    # every origin after the first still produced finite forecasts and the
    # cached cars carried (cars 3..5 stay resident under pure LRU order)
    assert stats["cache_carries"] == 3 * 2
    assert stats["warmup_steps"] > 11


def test_engine_reset_cache_drops_entries_but_keeps_counters(workload):
    model, targets, covs = workload
    engine = FleetForecaster(model, mode="carry")
    _submit_rolling(engine, targets, covs, [12, 13], list(range(3)))
    assert engine.stats["cache_entries"] == 3
    hits_before = engine.stats["cache_hits"]
    engine.reset_cache()
    assert engine.stats["cache_entries"] == 0
    assert engine.stats["cache_hits"] == hits_before
    # resubmitting after the clear re-runs full warm-ups (all misses)
    _submit_rolling(engine, targets, covs, [14], list(range(3)))
    assert engine.stats["cache_misses"] >= 6
