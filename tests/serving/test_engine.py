"""Tests for the fleet-batched inference engine."""

import numpy as np
import pytest

from repro.models.deep.rankmodel import RankSeqModel
from repro.models.deep.transformer import TransformerSeqModel
from repro.nn.inference import (
    head_inference,
    recurrent_inference,
    tile_states,
)
from repro.serving import FleetForecaster, ForecastRequest, spawn_request_rngs

N_COV = 3


def make_model(backbone="lstm", **kwargs):
    defaults = dict(num_covariates=N_COV, hidden_dim=8, num_layers=2,
                    encoder_length=12, decoder_length=2, rng=0, backbone=backbone)
    defaults.update(kwargs)
    return RankSeqModel(**defaults)


def make_histories(n_cars, n_laps=20, seed=100):
    rng = np.random.default_rng(seed)
    targets = [np.clip(10 + np.cumsum(rng.normal(0, 1, n_laps)), 1, 33) for _ in range(n_cars)]
    covs = [rng.normal(size=(n_laps, N_COV)) for _ in range(n_cars)]
    return targets, covs


def make_requests(targets, covs, horizon=3, n_samples=9, seed=7, **kwargs):
    streams = spawn_request_rngs(np.random.default_rng(seed), len(targets))
    future = np.zeros((horizon, N_COV))
    return [
        ForecastRequest(t, c, future, n_samples=n_samples, rng=s, **kwargs)
        for t, c, s in zip(targets, covs, streams)
    ]


# ----------------------------------------------------------------------
# byte-identity of the fleet-batched path vs the per-car loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backbone", ["lstm", "gru"])
def test_fleet_batch_matches_per_car_loop_bitwise(backbone):
    model = make_model(backbone)
    targets, covs = make_histories(6)
    future = np.zeros((3, N_COV))

    loop_streams = spawn_request_rngs(np.random.default_rng(7), 6)
    looped = [
        model.forecast_samples(t, c, future, n_samples=9, rng=s)
        for t, c, s in zip(targets, covs, loop_streams)
    ]
    fleet = FleetForecaster(model).submit(make_requests(targets, covs))
    for a, b in zip(looped, fleet):
        assert a.shape == b.shape == (9, 3)
        np.testing.assert_array_equal(a, b)


def test_fleet_batch_invariant_to_max_batch_rows():
    model = make_model()
    targets, covs = make_histories(5)
    big = FleetForecaster(model, max_batch_rows=8192).submit(make_requests(targets, covs))
    small = FleetForecaster(model, max_batch_rows=10).submit(make_requests(targets, covs))
    for a, b in zip(big, small):
        np.testing.assert_array_equal(a, b)


def test_mixed_lengths_and_horizons_group_correctly():
    model = make_model()
    targets, covs = make_histories(6)
    streams = spawn_request_rngs(np.random.default_rng(3), 6)
    requests = []
    for i, (t, c, s) in enumerate(zip(targets, covs, streams)):
        length = 10 + (i % 3)  # three different history lengths
        horizon = 2 + (i % 2)  # two different horizons
        requests.append(
            ForecastRequest(t[:length], c[:length], np.zeros((horizon, N_COV)),
                            n_samples=5, rng=s)
        )
    results = FleetForecaster(model).submit(requests)
    for request, samples in zip(requests, results):
        assert samples.shape == (5, request.horizon)
        assert np.all(np.isfinite(samples))


def test_submit_empty_and_single():
    model = make_model()
    engine = FleetForecaster(model)
    assert engine.submit([]) == []
    targets, covs = make_histories(1)
    (out,) = engine.submit(make_requests(targets, covs, n_samples=4))
    assert out.shape == (4, 3)


# ----------------------------------------------------------------------
# warm-up sharing and the state cache
# ----------------------------------------------------------------------
def test_requests_with_same_key_share_warmup():
    model = make_model()
    targets, covs = make_histories(1)
    future = np.zeros((2, N_COV))
    streams = spawn_request_rngs(np.random.default_rng(5), 4)
    shared = [
        ForecastRequest(targets[0], covs[0], future, n_samples=6, rng=s,
                        key="car-1", origin=19)
        for s in streams
    ]
    engine = FleetForecaster(model)
    results = engine.submit(shared)
    assert engine.stats["warmup_unique"] == 1
    assert engine.stats["warmup_shared"] == 3

    # identical to four independent warm-ups
    streams = spawn_request_rngs(np.random.default_rng(5), 4)
    independent = [
        ForecastRequest(targets[0], covs[0], future, n_samples=6, rng=s)
        for s in streams
    ]
    for a, b in zip(results, FleetForecaster(model).submit(independent)):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("backbone", ["lstm", "gru"])
def test_carry_mode_state_matches_from_scratch_frozen_replay(backbone):
    """Carried state after origin o2 == full replay with the frozen scale."""
    model = make_model(backbone)
    rng = np.random.default_rng(8)
    target = np.clip(10 + np.cumsum(rng.normal(0, 1, 40)), 1, 33)
    cov = rng.normal(size=(40, N_COV))
    future = np.zeros((2, N_COV))
    length = 12
    o1, o2 = 25, 28

    engine = FleetForecaster(model, mode="carry")

    def req(origin, seed):
        sl = slice(origin + 1 - length, origin + 1)
        return ForecastRequest(target[sl], cov[sl], future, n_samples=7,
                               rng=np.random.default_rng(seed), key="car", origin=origin)

    engine.submit([req(o1, 1)])
    carried = engine.submit([req(o2, 2)])[0]
    assert engine.stats["cache_carries"] == 1
    # the carry consumed only the three new laps, not a fresh 11-step warm-up
    assert engine.stats["warmup_steps"] == (length - 1) + (o2 - o1)

    # from-scratch replay: warm up from o1's window start through o2 with the
    # scale frozen at o1's window, then decode with the same RNG stream
    start = o1 + 1 - length
    scale = np.abs(target[start : o1 + 1]).mean() + 1.0
    z = (target[start : o2 + 1] / scale)[:, None]
    c = cov[start : o2 + 1]
    stack = recurrent_inference(model.lstm)
    states = stack.zero_state(1)
    for t in range(1, z.shape[0]):
        x = np.concatenate([z[t - 1][None, :], c[t][None, :]], axis=1)
        _, states = stack.step(x, states)
    states = tile_states(states, 7)
    head = head_inference(model.head)
    stream = np.random.default_rng(2)
    z_prev = np.tile(z[-1][None, :], (7, 1))
    expected = np.empty((7, 2))
    for h in range(2):
        x = np.concatenate([z_prev, np.tile(future[h][None, :], (7, 1))], axis=1)
        h_t, states = stack.step(x, states)
        mu, sigma = head(h_t)
        z_next = (mu[:, 0] + sigma[:, 0] * stream.standard_normal(7))[:, None]
        expected[:, h] = z_next[:, 0] * scale
        z_prev = z_next
    np.testing.assert_allclose(carried, expected, atol=1e-10)


def test_carry_mode_recomputes_after_large_gap():
    model = make_model()
    rng = np.random.default_rng(9)
    target = np.clip(10 + np.cumsum(rng.normal(0, 1, 60)), 1, 33)
    cov = rng.normal(size=(60, N_COV))
    future = np.zeros((2, N_COV))
    length = 12
    engine = FleetForecaster(model, mode="carry")

    def req(origin):
        sl = slice(origin + 1 - length, origin + 1)
        return ForecastRequest(target[sl], cov[sl], future, n_samples=3,
                               rng=np.random.default_rng(0), key="car", origin=origin)

    engine.submit([req(20)])
    engine.submit([req(50)])  # gap of 30 > window length -> full warm-up
    assert engine.stats["cache_carries"] == 0
    # the second submit re-froze the scale at origin 50's window
    entry = engine.cache.get("car")
    assert entry is not None and entry.origin == 50


def test_invalid_requests_are_rejected():
    model = make_model()
    engine = FleetForecaster(model)
    good_t = np.ones(10)
    good_c = np.zeros((10, N_COV))
    with pytest.raises(ValueError):  # covariate dim mismatch
        engine.submit([ForecastRequest(good_t, np.zeros((10, N_COV + 1)), np.zeros((2, N_COV)))])
    with pytest.raises(ValueError):  # misaligned history
        ForecastRequest(good_t, np.zeros((9, N_COV)), np.zeros((2, N_COV)))
    with pytest.raises(ValueError):  # bad n_samples
        ForecastRequest(good_t, good_c, np.zeros((2, N_COV)), n_samples=0)
    with pytest.raises(ValueError):  # bad mode
        FleetForecaster(model, mode="approximate")
    with pytest.raises(TypeError):  # unsupported backbone
        FleetForecaster(object())


# ----------------------------------------------------------------------
# warm-up alignment regression (the seed's dead ``z_prev`` assignment)
# ----------------------------------------------------------------------
def test_warmup_consumes_z_hist_shifted_by_one():
    """Warm-up input at lap t must be [z_{t-1}, x_t]; decode seeds on z_{-1}.

    Regression test for the seed implementation, which tiled ``z_hist[0]``
    into ``z_prev`` before the warm-up loop (a dead assignment immediately
    overwritten after it) — the engine keeps a single, explicit alignment.
    """
    model = make_model()
    targets, covs = make_histories(1, seed=42)
    target, cov = targets[0], covs[0]
    length = target.shape[0]

    engine = FleetForecaster(model, mode="carry")
    engine.submit([ForecastRequest(target, cov, np.zeros((2, N_COV)), n_samples=3,
                                   rng=np.random.default_rng(0), key="car", origin=length - 1)])
    entry = engine.cache.get("car")

    scale = np.abs(target).mean() + 1.0
    z = (target / scale)[:, None]
    stack = recurrent_inference(model.lstm)
    states = stack.zero_state(1)
    for t in range(1, length):
        x = np.concatenate([z[t - 1][None, :], cov[t][None, :]], axis=1)
        _, states = stack.step(x, states)
    np.testing.assert_allclose(entry.packed_state, model.lstm.export_state(states), atol=0)
    # the decode loop is seeded with the *last* observed scaled target
    np.testing.assert_allclose(entry.z_last, z[-1], atol=0)


# ----------------------------------------------------------------------
# Transformer backend
# ----------------------------------------------------------------------
def make_transformer():
    return TransformerSeqModel(num_covariates=N_COV, d_model=16, num_heads=4, d_ff=32,
                               num_encoder_layers=1, num_decoder_layers=1,
                               encoder_length=12, decoder_length=2, rng=0)


def test_transformer_fleet_submit_shapes_and_grouping():
    model = make_transformer()
    targets, covs = make_histories(5)
    engine = FleetForecaster(model)
    results = engine.submit(make_requests(targets, covs, horizon=2, n_samples=6))
    assert engine.stats["requests"] == 5
    for samples in results:
        assert samples.shape == (6, 2)
        assert np.all(np.isfinite(samples))


def test_transformer_fleet_consistent_with_single_submits():
    model = make_transformer()
    targets, covs = make_histories(4)
    batched = FleetForecaster(model).submit(make_requests(targets, covs, horizon=2))
    engine = FleetForecaster(model)
    single = [
        engine.submit([request])[0]
        for request in make_requests(targets, covs, horizon=2)
    ]
    for a, b in zip(batched, single):
        # attention/layernorm matmuls are not chunked, so only near-equality
        # (not bitwise identity) is guaranteed for the Transformer backend
        np.testing.assert_allclose(a, b, rtol=1e-8, atol=1e-8)


def test_transformer_rejects_too_short_history():
    model = make_transformer()
    engine = FleetForecaster(model)
    with pytest.raises(ValueError):
        engine.submit([ForecastRequest(np.ones(1), np.zeros((1, N_COV)), np.zeros((2, N_COV)))])


def test_carry_mode_key_without_origin_falls_back_to_full_warmup():
    """Regression: a cached key + a later origin-less request must not crash."""
    model = make_model()
    targets, covs = make_histories(1)
    future = np.zeros((2, N_COV))
    engine = FleetForecaster(model, mode="carry")
    engine.submit([ForecastRequest(targets[0], covs[0], future, n_samples=3,
                                   rng=np.random.default_rng(0), key="car", origin=19)])
    # same key, no origin: uncacheable -> plain full warm-up, no TypeError
    (out,) = engine.submit([ForecastRequest(targets[0], covs[0], future, n_samples=3,
                                            rng=np.random.default_rng(1), key="car")])
    assert out.shape == (3, 2)
    assert engine.stats["cache_carries"] == 0
