"""The precision knob through the engine, the wire protocol and the gateway.

Contract under test (wire schema v5):

* ``float64`` stays the byte-identical reference — a request that omits
  ``precision`` (or names it explicitly) returns exactly the bytes the
  pre-v5 gateway returned;
* ``float32`` / ``int8`` are error-bounded against float64 (identical RNG
  streams, small bounded rank deviation, no byte-identity claim) and are
  themselves fully deterministic;
* an HTTP ``precision: "float32"`` request returns results identical to
  the in-process float32 engine — in both in-process and worker modes;
* unknown tiers are rejected with the structured ``unsupported_precision``
  wire error, and low tiers are rejected on backbones/decode modes that
  only exist as the float64 reference.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import DeepARForecaster, TransformerForecaster
from repro.serving import (
    FleetForecaster,
    ForecastClient,
    ForecastRequest,
    ServerError,
)
from repro.serving import wire
from repro.serving.requests import NamedForecastRequest
from repro.serving.server import ForecastServer, ServerConfig
from repro.simulation import RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=200,
)


@pytest.fixture(scope="module")
def tiny_series():
    track = replace(track_for_year("Indy500", 2018), total_laps=60, num_cars=8)
    race = RaceSimulator(track, event="Indy500", year=2019, seed=3).run()
    return build_race_features(race)


@pytest.fixture(scope="module")
def forecaster(tiny_series):
    return DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:4])


def _submit(forecaster, series, precision, seed=7, origin=20, horizon=2, n_samples=24):
    engine = forecaster.fleet_engine(precision=precision)
    # seed -> np.random.default_rng(seed): the wire convention, so the
    # HTTP parity tests below compare like for like
    request = forecaster._fleet_request(
        series, origin, forecaster._future_covariates(series, origin, horizon),
        n_samples, np.random.default_rng(seed),
    )
    return engine.submit([request])[0]


# ----------------------------------------------------------------------
# engine: parity, determinism, validation
# ----------------------------------------------------------------------
def test_low_tiers_are_error_bounded_and_deterministic(forecaster, tiny_series):
    series = tiny_series[0]
    reference = _submit(forecaster, series, "float64")
    f32 = _submit(forecaster, series, "float32")
    i8 = _submit(forecaster, series, "int8")
    # identical RNG streams -> trajectories line up one-to-one; the per-
    # family tolerances here mirror benchmarks/test_bench_precision.py
    assert np.abs(f32 - reference).max() <= 1e-3
    assert np.abs(i8 - reference).max() <= 0.5
    assert not np.array_equal(f32, reference)  # error-bounded, not identical
    # results come back float64 on every tier (the wire/result dtype)
    assert f32.dtype == np.float64 and i8.dtype == np.float64
    # each low tier is itself exactly reproducible
    np.testing.assert_array_equal(f32, _submit(forecaster, series, "float32"))
    np.testing.assert_array_equal(i8, _submit(forecaster, series, "int8"))


def test_fleet_engine_caches_one_replica_per_precision(forecaster):
    e64 = forecaster.fleet_engine(precision="float64")
    e32 = forecaster.fleet_engine(precision="float32")
    assert e64 is forecaster.fleet_engine(precision="float64")
    assert e32 is forecaster.fleet_engine(precision="float32")
    assert e64 is not e32
    assert e64.dtype == np.float64 and e32.dtype == np.float32


def test_low_precision_rejects_stepwise_decode(forecaster):
    with pytest.raises(ValueError, match="fused engine only"):
        FleetForecaster(forecaster.model, decode="stepwise", precision="float32")


def test_low_precision_rejects_transformer_backbone(tiny_series):
    model = TransformerForecaster(
        seed=5, encoder_length=12, decoder_length=2, hidden_dim=8,
        num_layers=1, epochs=1, batch_size=32, max_train_windows=50,
    ).fit(tiny_series[:2])
    with pytest.raises(ValueError, match="Transformer backbone"):
        model.fleet_engine(precision="float32")


def test_named_request_normalizes_precision():
    request = ForecastRequest(
        np.ones(12), np.zeros((12, 9)), np.zeros((2, 9)), n_samples=3, rng=0
    )
    named = NamedForecastRequest(model="m", request=request)
    assert named.precision == "float64"
    assert NamedForecastRequest(model="m", request=request, precision="int8").precision == "int8"
    with pytest.raises(ValueError, match="unknown precision"):
        NamedForecastRequest(model="m", request=request, precision="bf16")


# ----------------------------------------------------------------------
# wire schema v5
# ----------------------------------------------------------------------
def test_wire_round_trips_precision():
    request = ForecastRequest(
        np.ones(12), np.zeros((12, 9)), np.zeros((2, 9)), n_samples=3, rng=5
    )
    named = NamedForecastRequest(model="m", request=request, precision="float32")
    document = wire.named_request_to_wire(named)
    assert document["precision"] == "float32"
    decoded = wire.named_request_from_wire(document)
    assert decoded.precision == "float32"
    # absent field -> the float64 default (a v4 client document still parses)
    del document["precision"]
    assert wire.named_request_from_wire(document).precision == "float64"


def test_wire_rejects_unknown_precision():
    with pytest.raises(wire.WireError) as excinfo:
        wire.precision_from_wire({"precision": "float16"})
    err = excinfo.value
    assert err.code == "unsupported_precision"
    assert err.status == 400
    assert err.detail["precision"] == "float16"
    assert err.detail["supported"] == ["float64", "float32", "int8"]


def test_wire_schema_is_v6():
    assert wire.WIRE_SCHEMA_VERSION == 6


# ----------------------------------------------------------------------
# gateway: HTTP tier == in-process tier, both server modes
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=["in-process", "workers"])
def server(request, tmp_path_factory, tiny_series, forecaster):
    root = str(tmp_path_factory.mktemp(f"precision-store-{request.param}"))
    ArtifactStore(root).save_model("deepar", forecaster)
    overrides = {}
    if request.param == "workers":
        overrides = dict(workers=True, worker_backoff_s=0.02)
    config = ServerConfig(
        store=root, port=0, capacity=2, batch_window_ms=2.0, **overrides
    )
    with ForecastServer(config) as running:
        yield running


def _named(forecaster, series, precision, seed=7, origin=20, horizon=2, n_samples=24):
    return ForecastClient.request(
        "deepar",
        forecaster._history_target(series, origin),
        forecaster._history_covariates(series, origin),
        forecaster._future_covariates(series, origin, horizon),
        n_samples=n_samples,
        rng=seed,
        key=(series.race_id, series.car_id),
        origin=origin,
        precision=precision,
    )


def test_http_tiers_match_in_process_engines(server, forecaster, tiny_series):
    client = ForecastClient(port=server.port)
    series = tiny_series[0]
    for precision in ("float64", "float32", "int8"):
        via_http = client.forecast([_named(forecaster, series, precision)])[0]
        in_process = _submit(forecaster, series, precision)
        np.testing.assert_array_equal(via_http, in_process)


def test_http_float64_unchanged_by_the_precision_field(server, forecaster, tiny_series):
    """Omitting ``precision`` and naming float64 return identical bytes."""
    client = ForecastClient(port=server.port)
    series = tiny_series[0]
    named = _named(forecaster, series, "float64")
    explicit = client.forecast([named])[0]
    payload = wire.forecast_batch_to_wire([named])
    del payload["requests"][0]["precision"]  # a pre-v5 client document
    legacy = client._call("POST", "/v1/forecast", payload)
    legacy_samples = list(wire.results_from_wire(legacy))[0]
    np.testing.assert_array_equal(explicit, legacy_samples)


def test_http_unknown_precision_is_a_structured_error(server, forecaster, tiny_series):
    client = ForecastClient(port=server.port)
    payload = wire.forecast_batch_to_wire([_named(forecaster, tiny_series[0], "float64")])
    payload["requests"][0]["precision"] = "float16"
    with pytest.raises(ServerError) as excinfo:
        client._call("POST", "/v1/forecast", payload)
    assert excinfo.value.code == "unsupported_precision"
    assert excinfo.value.status == 400


def test_mixed_precision_batch_settles_in_order(server, forecaster, tiny_series):
    """One batch fanning out to three tiers comes back slot-aligned."""
    client = ForecastClient(port=server.port)
    series = tiny_series[0]
    batch = [
        _named(forecaster, series, "float64", seed=11),
        _named(forecaster, series, "float32", seed=11),
        _named(forecaster, series, "int8", seed=11),
    ]
    results = client.forecast(batch)
    expected = [
        _submit(forecaster, series, p, seed=11)
        for p in ("float64", "float32", "int8")
    ]
    for got, want in zip(results, expected):
        np.testing.assert_array_equal(got, want)
