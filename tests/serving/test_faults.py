"""Unit tests of the deterministic fault-injection schedule."""

import json

import pytest

from repro.serving.faults import FaultPlan, FaultSpec


def test_fault_spec_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec(kind="explode")
    with pytest.raises(ValueError, match="'when'"):
        FaultSpec(kind="drop", when="sometimes")
    with pytest.raises(ValueError):
        FaultSpec(kind="delay", delay_s=-1)
    with pytest.raises(ValueError):
        FaultSpec(kind="error", at=-1)
    with pytest.raises(ValueError):
        FaultSpec(kind="error", count=0)


def test_fault_spec_round_trips_and_rejects_unknown_keys():
    spec = FaultSpec(kind="error", route="POST /v1/forecast", at=2, status=502)
    assert FaultSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError, match="unknown fault spec key"):
        FaultSpec.from_dict({"kind": "error", "surprise": 1})
    with pytest.raises(ValueError, match="needs a 'kind'"):
        FaultSpec.from_dict({"route": "x"})


def test_plan_fires_on_the_scheduled_ordinal_only():
    plan = FaultPlan([FaultSpec(kind="error", route=r"POST /v1/forecast", at=1, count=2)])
    assert plan.intercept("POST", "/v1/forecast") is None  # ordinal 0
    assert plan.intercept("GET", "/v1/health") is None  # other routes don't count
    assert plan.intercept("POST", "/v1/forecast") is not None  # ordinal 1
    assert plan.intercept("POST", "/v1/forecast") is not None  # ordinal 2 (count=2)
    assert plan.intercept("POST", "/v1/forecast") is None  # ordinal 3
    assert plan.fired == 2
    plan.reset()
    assert plan.fired == 0
    assert plan.intercept("POST", "/v1/forecast") is None  # ordinal 0 again


def test_plan_specs_count_ordinals_independently_and_first_wins():
    plan = FaultPlan(
        [
            FaultSpec(kind="delay", route=r"/v1/sessions", at=0, delay_s=0.0),
            FaultSpec(kind="error", route=r"/v1/sessions", at=0),
        ]
    )
    fired = plan.intercept("POST", "/v1/sessions/sess-000001/lap")
    assert fired is not None and fired.kind == "delay"  # first in plan order
    # both specs consumed ordinal 0, so neither fires again
    assert plan.intercept("POST", "/v1/sessions/sess-000001/lap") is None


def test_plan_round_trips_through_json(tmp_path):
    plan = FaultPlan(
        [
            FaultSpec(kind="drop", route="POST /v1/forecast", at=0, when="after"),
            FaultSpec(kind="truncate", route="POST /v1/scenarios", after_events=2),
        ]
    )
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    loaded = FaultPlan.from_file(str(path))
    assert [spec.to_dict() for spec in loaded.specs] == [
        spec.to_dict() for spec in plan.specs
    ]
    # a bare array is accepted too
    assert len(FaultPlan.from_dict([{"kind": "error"}])) == 1
    with pytest.raises(ValueError, match="unknown fault plan key"):
        FaultPlan.from_dict({"faultz": []})


def test_seeded_plan_is_reproducible():
    first = FaultPlan.seeded(11, route="POST /v1/forecast", n_requests=50, fault_rate=0.4)
    second = FaultPlan.seeded(11, route="POST /v1/forecast", n_requests=50, fault_rate=0.4)
    assert [s.to_dict() for s in first.specs] == [s.to_dict() for s in second.specs]
    assert 0 < len(first) < 50  # some, not all, ordinals faulted
    different = FaultPlan.seeded(12, route="POST /v1/forecast", n_requests=50, fault_rate=0.4)
    assert [s.to_dict() for s in first.specs] != [s.to_dict() for s in different.specs]
