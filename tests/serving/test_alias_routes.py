"""Wire-v6 alias routes: promote -> serve -> rollback over HTTP, both modes.

The acceptance gate of the continuous-learning PR: forecasting through the
``champion`` alias is byte-identical to addressing the target directly,
promotion re-points live traffic, and a one-call rollback serves the
previous champion byte-for-byte — in the single-process gateway and the
supervised worker-pool gateway alike.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import DeepARForecaster
from repro.serving import ForecastClient
from repro.serving.client import ServerError
from repro.serving.server import ForecastServer, ServerConfig
from repro.simulation import RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=150,
)


@pytest.fixture(scope="module")
def tiny_series():
    track = replace(track_for_year("Indy500", 2018), total_laps=45, num_cars=8)
    race = RaceSimulator(track, event="Indy500", year=2019, seed=3).run()
    return build_race_features(race)


@pytest.fixture(scope="module")
def fitted(tiny_series):
    return {
        "champ": DeepARForecaster(seed=5, **DEEP_KWARGS).fit(tiny_series[:4]),
        "cand": DeepARForecaster(seed=6, **DEEP_KWARGS).fit(tiny_series[:4]),
    }


def _config(store_root, workers):
    options = dict(store=store_root, port=0, capacity=4, batch_window_ms=2.0)
    if workers:
        options.update(
            workers=True,
            preload=["champ"],
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=1.0,
            worker_backoff_s=0.02,
        )
    return ServerConfig(**options)


@pytest.fixture(scope="module", params=["in-process", "workers"])
def stack(request, tmp_path_factory, fitted):
    """A live gateway (per mode) over a fresh store holding both models."""
    root = str(tmp_path_factory.mktemp(f"alias-store-{request.param}"))
    store = ArtifactStore(root)
    for name, model in fitted.items():
        store.save_model(name, model)
    with ForecastServer(_config(root, request.param == "workers")) as server:
        yield server, root


@pytest.fixture()
def client(stack):
    return ForecastClient(port=stack[0].port)


def _batch(forecaster, series, model):
    return [
        ForecastClient.request(
            model,
            forecaster._history_target(series, 20 + i),
            forecaster._history_covariates(series, 20 + i),
            forecaster._future_covariates(series, 20 + i, 2),
            n_samples=7,
            rng=11 + i,
            key=(series.race_id, series.car_id),
            origin=20 + i,
        )
        for i in range(3)
    ]


def test_promote_serve_rollback_round_trip(client, tiny_series, fitted):
    series = tiny_series[0]
    champ = fitted["champ"]

    promoted = client.promote("champion", "champ", note="bootstrap")
    assert promoted["previous"] is None and promoted["target"] == "champ"
    assert client.resolve("champion") == "champ"
    assert client.aliases() == {"champion": "champ"}

    # the alias resolves at submit time: byte-identical to direct addressing
    baseline = client.forecast(_batch(champ, series, "champion"))
    direct = client.forecast(_batch(champ, series, "champ"))
    for via_alias, expected in zip(baseline, direct):
        np.testing.assert_array_equal(via_alias, expected)

    # the model catalog annotates the aliased target
    models = {entry["name"]: entry for entry in client.models()}
    assert models["champ"]["aliases"] == ["champion"]
    assert models["cand"]["aliases"] == []

    # promotion re-points live traffic at the candidate
    promoted = client.promote("champion", "cand", note="shadow winner")
    assert promoted["previous"] == "champ"
    challenger = client.forecast(_batch(champ, series, "champion"))
    direct = client.forecast(_batch(champ, series, "cand"))
    for via_alias, expected in zip(challenger, direct):
        np.testing.assert_array_equal(via_alias, expected)
    assert any(
        not np.array_equal(a, b) for a, b in zip(challenger, baseline)
    ), "candidate and champion forecasts should differ"

    # the aliased target refuses to unload, structured
    with pytest.raises(ServerError) as err:
        client.unload("cand")
    assert err.value.code == "model_aliased"
    assert err.value.status == 409
    with pytest.raises(ServerError) as err:
        client.unload("champion")
    assert err.value.code == "model_aliased"

    # one-call rollback: byte-identical to the pre-promotion champion
    rolled = client.rollback("champion")
    assert rolled["target"] == "champ" and rolled["previous"] == "cand"
    after = client.forecast(_batch(champ, series, "champion"))
    for got, expected in zip(after, baseline):
        np.testing.assert_array_equal(got, expected)


def test_alias_error_envelopes(client):
    with pytest.raises(ServerError) as err:
        client.resolve("no-such-alias")
    assert err.value.code == "unknown_alias" and err.value.status == 404

    with pytest.raises(ServerError) as err:
        client.promote("err-alias", "no-such-model")
    assert err.value.code == "unknown_model" and err.value.status == 404

    with pytest.raises(ServerError) as err:
        client.promote("champ", "cand")  # alias may not shadow an artifact
    assert err.value.code == "invalid_alias" and err.value.status == 400

    with pytest.raises(ServerError) as err:
        client.rollback("never-promoted")
    assert err.value.code == "unknown_alias" and err.value.status == 404

    # the round-trip test left champion -> champ: a no-op flip is refused
    with pytest.raises(ServerError) as err:
        client.promote("champion", "champ")
    assert err.value.code == "invalid_alias" and err.value.status == 400


def test_sessions_bind_to_the_resolved_target(stack, client):
    """A live session opened via the alias is served by the target replica
    and keeps it pinned until close."""
    server, root = stack
    session = client.open_session(
        "champion", horizon=2, n_samples=5, min_history=12, rng=0,
        start=14, stop=18, delay=2, event="Indy500", year=2019,
    )
    sessions = {doc["session"]: doc for doc in client.sessions()}
    assert sessions[session.session_id]["model"] == "champ"
    session.close()
