"""Seeded determinism of the per-car wrapper and the fleet-batched path.

The contract: with per-request RNG streams spawned from the same root seed
(``numpy.random.Generator.spawn``), forecasts are byte-identical no matter
whether they are computed one car at a time, in one fleet batch, or in a
different submission order.
"""

import numpy as np
import pytest

from dataclasses import replace

from repro.data import build_race_features
from repro.models import RankNetForecaster
from repro.models.deep.rankmodel import RankSeqModel
from repro.serving import FleetForecaster, ForecastRequest, spawn_request_rngs

N_COV = 2


@pytest.fixture(scope="module")
def fleet_inputs():
    rng = np.random.default_rng(0)
    targets = [np.clip(12 + np.cumsum(rng.normal(0, 1, 25)), 1, 33) for _ in range(8)]
    covs = [rng.normal(size=(25, N_COV)) for _ in range(8)]
    return targets, covs


def build_requests(targets, covs, seed, n_samples=11, horizon=2):
    streams = spawn_request_rngs(np.random.default_rng(seed), len(targets))
    future = np.zeros((horizon, N_COV))
    return [
        ForecastRequest(t, c, future, n_samples=n_samples, rng=s, key=i, origin=24)
        for i, (t, c, s) in enumerate(zip(targets, covs, streams))
    ]


@pytest.mark.parametrize("backbone", ["lstm", "gru"])
def test_same_seed_same_forecasts_loop_vs_fleet(fleet_inputs, backbone):
    targets, covs = fleet_inputs
    model = RankSeqModel(num_covariates=N_COV, hidden_dim=8, encoder_length=12,
                         decoder_length=2, rng=1, backbone=backbone)
    future = np.zeros((2, N_COV))
    streams = spawn_request_rngs(np.random.default_rng(123), len(targets))
    looped = [
        model.forecast_samples(t, c, future, n_samples=11, rng=s)
        for t, c, s in zip(targets, covs, streams)
    ]
    fleet = FleetForecaster(model).submit(build_requests(targets, covs, seed=123))
    for a, b in zip(looped, fleet):
        np.testing.assert_array_equal(a, b)


def test_resubmitting_same_seed_is_reproducible(fleet_inputs):
    targets, covs = fleet_inputs
    model = RankSeqModel(num_covariates=N_COV, hidden_dim=8, encoder_length=12,
                         decoder_length=2, rng=1)
    engine = FleetForecaster(model)
    first = engine.submit(build_requests(targets, covs, seed=9))
    second = engine.submit(build_requests(targets, covs, seed=9))
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)


def test_submission_order_does_not_change_results(fleet_inputs):
    targets, covs = fleet_inputs
    model = RankSeqModel(num_covariates=N_COV, hidden_dim=8, encoder_length=12,
                         decoder_length=2, rng=1)
    forward = FleetForecaster(model).submit(build_requests(targets, covs, seed=77))
    requests = build_requests(targets, covs, seed=77)  # fresh, unconsumed streams
    permutation = np.random.default_rng(0).permutation(len(requests))
    shuffled = FleetForecaster(model).submit([requests[i] for i in permutation])
    for pos, i in enumerate(permutation):
        np.testing.assert_array_equal(forward[i], shuffled[pos])


def test_per_car_streams_are_independent(fleet_inputs):
    targets, covs = fleet_inputs
    model = RankSeqModel(num_covariates=N_COV, hidden_dim=8, encoder_length=12,
                         decoder_length=2, rng=1)
    results = FleetForecaster(model).submit(build_requests(targets, covs, seed=5))
    # different cars must not share their Monte-Carlo noise
    assert not np.array_equal(results[0] / results[0].mean(), results[1] / results[1].mean())


def test_forecaster_fleet_matches_itself_after_rng_reset():
    track_series = _tiny_series()
    model = RankNetForecaster(variant="oracle", encoder_length=12, decoder_length=2,
                              hidden_dim=8, epochs=1, batch_size=32,
                              max_train_windows=100, seed=0)
    model.fit(track_series[:4])
    tasks = [(track_series[5], origin, 2) for origin in (20, 25, 30)]
    model.rng = np.random.default_rng(999)
    first = model.forecast_fleet(tasks, n_samples=8)
    model.rng = np.random.default_rng(999)
    second = model.forecast_fleet(tasks, n_samples=8)
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a.samples, b.samples)
    # and equals the single-task path under the same spawned streams
    model.rng = np.random.default_rng(999)
    singles = [model.forecast_fleet([task], n_samples=8)[0] for task in tasks]
    # spawn order differs (three spawns of one vs one spawn of three), so the
    # streams differ — but the shapes and determinism contract must hold
    for forecast in singles:
        assert forecast.samples.shape == (8, 2)


def _tiny_series():
    from repro.simulation import RaceSimulator, track_for_year

    track = replace(track_for_year("Indy500", 2018), total_laps=70, num_cars=10)
    race = RaceSimulator(track, event="Indy500", year=2017, seed=11).run()
    return build_race_features(race)
