"""Sanity checks on the CI pipeline and packaging/lint configuration.

These tests are the repo-local stand-in for ``actionlint``: they parse the
workflow YAML and assert the pipeline has the three jobs CI relies on
(lint, the Python test matrix, and the benchmark smoke run) wired to the
same commands the Makefile exposes locally.
"""

import pathlib
import tomllib

import yaml

REPO = pathlib.Path(__file__).resolve().parents[2]
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"
PYPROJECT = REPO / "pyproject.toml"
MAKEFILE = REPO / "Makefile"

TIER1 = "PYTHONPATH=src python -m pytest -x -q"
BENCH_SMOKE = "python -m repro.experiments.runner table5 --profile quick"
BENCH_TRAIN = "python -m repro.profiling.training"


def load_workflow():
    return yaml.safe_load(WORKFLOW.read_text())


def job_run_lines(job):
    return [step["run"] for step in job["steps"] if "run" in step]


def test_workflow_parses_and_triggers():
    workflow = load_workflow()
    assert workflow["name"] == "CI"
    # YAML 1.1 parses the bare key `on` as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers and "pull_request" in triggers


def test_workflow_has_lint_test_docs_and_bench_jobs():
    jobs = load_workflow()["jobs"]
    assert set(jobs) == {"lint", "tests", "docs", "bench-smoke"}


def test_test_job_runs_tier1_on_python_matrix():
    job = load_workflow()["jobs"]["tests"]
    versions = job["strategy"]["matrix"]["python-version"]
    assert versions == ["3.10", "3.11", "3.12"]
    assert any(TIER1 in line for line in job_run_lines(job))


def test_lint_job_runs_ruff_check_and_format():
    lines = job_run_lines(load_workflow()["jobs"]["lint"])
    assert any(line.startswith("ruff check") for line in lines)
    assert any(line.startswith("ruff format --check") for line in lines)


def test_bench_smoke_job_runs_quick_table5():
    lines = job_run_lines(load_workflow()["jobs"]["bench-smoke"])
    assert any(BENCH_SMOKE in line for line in lines)


def test_bench_smoke_job_runs_training_breakdown():
    lines = job_run_lines(load_workflow()["jobs"]["bench-smoke"])
    assert any(BENCH_TRAIN in line for line in lines)


def test_test_job_runs_artifact_roundtrip_smoke():
    lines = job_run_lines(load_workflow()["jobs"]["tests"])
    assert any("repro.artifacts.smoke fit" in line for line in lines)
    assert any("repro.artifacts.smoke check" in line for line in lines)


def test_test_job_runs_serving_gateway_smoke():
    lines = job_run_lines(load_workflow()["jobs"]["tests"])
    assert any("repro.serving.smoke" in line for line in lines)


def test_bench_smoke_job_runs_serving_breakdown():
    lines = job_run_lines(load_workflow()["jobs"]["bench-smoke"])
    assert any("repro.profiling.server" in line for line in lines)


def test_test_job_caches_pip():
    job = load_workflow()["jobs"]["tests"]
    setup = next(s for s in job["steps"] if s.get("uses", "").startswith("actions/setup-python@"))
    assert setup["with"]["cache"] == "pip"
    assert setup["with"]["cache-dependency-path"] == "pyproject.toml"


def test_console_script_entry_point_is_declared():
    config = tomllib.loads(PYPROJECT.read_text())
    scripts = config["project"]["scripts"]
    assert scripts["repro-experiments"] == "repro.experiments.runner:main"
    assert scripts["repro-serve"] == "repro.serving.server:main"
    assert scripts["repro-scenarios"] == "repro.scenarios.runner:main"


def test_docs_job_checks_links_and_validates_the_scenario_matrix():
    lines = job_run_lines(load_workflow()["jobs"]["docs"])
    assert any("tools/check_links.py" in line for line in lines)
    assert any(
        "repro.scenarios.runner" in line and "--validate" in line for line in lines
    )


def test_bench_smoke_job_runs_scenario_breakdown():
    lines = job_run_lines(load_workflow()["jobs"]["bench-smoke"])
    assert any("repro.profiling.scenarios" in line for line in lines)


def test_every_job_checks_out_and_sets_up_python():
    for name, job in load_workflow()["jobs"].items():
        uses = [step.get("uses", "") for step in job["steps"]]
        assert any(u.startswith("actions/checkout@") for u in uses), name
        assert any(u.startswith("actions/setup-python@") for u in uses), name


def test_pyproject_carries_ruff_config():
    config = tomllib.loads(PYPROJECT.read_text())
    assert config["project"]["requires-python"] == ">=3.10"
    ruff = config["tool"]["ruff"]
    assert ruff["target-version"] == "py310"
    assert "F" in ruff["lint"]["select"]


def test_makefile_targets_match_ci_commands():
    text = MAKEFILE.read_text()
    for target in (
        "test:", "lint:", "bench-smoke:", "bench-train:", "bench-serve:",
        "bench-scenarios:", "docs-check:", "smoke-serve:",
    ):
        assert f"\n{target}" in text, f"missing Makefile target {target}"
    assert "-m repro.experiments.runner table5 --profile quick" in text
    assert "-m repro.profiling.training" in text
    assert "-m repro.profiling.server" in text
    assert "-m repro.profiling.scenarios" in text
    assert "-m repro.serving.smoke" in text
    assert "tools/check_links.py" in text
    assert "ruff check" in text and "ruff format --check" in text
