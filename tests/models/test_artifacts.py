"""Round-trip tests of the to_artifact()/from_artifact() protocol.

The contract gated here: for every forecaster family, rebuilding a fitted
model from its artifact yields *byte-identical* forecasts — same samples,
bit for bit — because the artifact captures the fitted parameters, scalers,
feature configuration, field size and the forecast RNG stream.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.data import build_race_features
from repro.models import (
    ARTIFACT_FAMILIES,
    ArimaForecaster,
    CurRankForecaster,
    DeepARForecaster,
    PitModelMLP,
    RandomForestForecaster,
    RankNetForecaster,
    SVRForecaster,
    TransformerForecaster,
    XGBoostForecaster,
    from_artifact,
)
from repro.models.base import ARTIFACT_SCHEMA_VERSION
from repro.simulation import RaceSimulator, track_for_year

DEEP_KWARGS = dict(
    encoder_length=12,
    decoder_length=2,
    hidden_dim=8,
    num_layers=1,
    epochs=1,
    batch_size=32,
    max_train_windows=200,
    seed=5,
)

BUILDERS = {
    "CurRank": lambda: CurRankForecaster(),
    "ARIMA": lambda: ArimaForecaster(seed=1),
    "RandomForest": lambda: RandomForestForecaster(n_estimators=4, seed=2, max_instances=400),
    "SVM": lambda: SVRForecaster(seed=3, max_instances=250),
    "XGBoost": lambda: XGBoostForecaster(n_estimators=6, seed=4, max_instances=400),
    "DeepAR": lambda: DeepARForecaster(**DEEP_KWARGS),
    "RankNet-Oracle": lambda: RankNetForecaster(variant="oracle", **DEEP_KWARGS),
    "RankNet-Joint": lambda: RankNetForecaster(variant="joint", **DEEP_KWARGS),
    "RankNet-MLP": lambda: RankNetForecaster(variant="mlp", **DEEP_KWARGS),
    "Transformer-MLP": lambda: TransformerForecaster(
        variant="mlp", d_model=8, num_heads=2, d_ff=16, num_encoder_layers=1, **DEEP_KWARGS
    ),
}


@pytest.fixture(scope="module")
def tiny_series():
    track = replace(track_for_year("Indy500", 2018), total_laps=80, num_cars=10)
    race = RaceSimulator(track, event="Indy500", year=2017, seed=11).run()
    return build_race_features(race)


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_round_trip_forecasts_are_byte_identical(name, tiny_series):
    model = BUILDERS[name]()
    model.fit(tiny_series[:6], None)
    artifact = model.to_artifact()
    clone = from_artifact(artifact)
    series = tiny_series[0]
    # both models hold the RNG stream snapshotted at to_artifact() time, so
    # their next forecasts must consume identical randomness
    original = model.forecast(series, 20, 5, n_samples=8)
    restored = clone.forecast(series, 20, 5, n_samples=8)
    np.testing.assert_array_equal(original.samples, restored.samples)
    assert clone.field_size == model.field_size
    assert clone.name == model.name
    # a second forecast keeps the streams in lockstep
    np.testing.assert_array_equal(
        model.forecast(series, 30, 4, n_samples=8).samples,
        clone.forecast(series, 30, 4, n_samples=8).samples,
    )


def test_fleet_forecasts_round_trip_byte_identical(tiny_series):
    model = RankNetForecaster(variant="mlp", **DEEP_KWARGS)
    model.fit(tiny_series[:6], None)
    clone = from_artifact(model.to_artifact())
    tasks = [(tiny_series[0], 20, 4), (tiny_series[1], 25, 4)]
    original = model.forecast_fleet(tasks, n_samples=6)
    restored = clone.forecast_fleet(tasks, n_samples=6)
    for a, b in zip(original, restored):
        np.testing.assert_array_equal(a.samples, b.samples)


def test_pitmodel_artifact_round_trip(tiny_series):
    pit = PitModelMLP(hidden=(8,), epochs=3, seed=7)
    pit.fit(tiny_series[:6])
    clone = PitModelMLP.from_artifact(pit.to_artifact())
    rng_a = np.random.default_rng(3)
    rng_b = np.random.default_rng(3)
    plan_a = pit.plan_covariates(tiny_series[0], 20, 10, rng=rng_a)
    plan_b = clone.plan_covariates(tiny_series[0], 20, 10, rng=rng_b)
    np.testing.assert_array_equal(plan_a, plan_b)


def test_artifact_family_registry_covers_builders():
    for name in (
        "CurRankForecaster",
        "ArimaForecaster",
        "RandomForestForecaster",
        "SVRForecaster",
        "XGBoostForecaster",
        "DeepARForecaster",
        "RankNetForecaster",
        "TransformerForecaster",
        "PitModelMLP",
    ):
        assert name in ARTIFACT_FAMILIES


def test_from_artifact_rejects_unknown_family_and_wrong_class(tiny_series):
    model = CurRankForecaster().fit(tiny_series[:2])
    artifact = model.to_artifact()
    artifact.family = "NoSuchFamily"
    with pytest.raises(KeyError):
        from_artifact(artifact)
    artifact.family = "CurRankForecaster"
    with pytest.raises(ValueError):
        ArimaForecaster.from_artifact(artifact)


def test_from_artifact_rejects_newer_schema(tiny_series):
    artifact = CurRankForecaster().fit(tiny_series[:2]).to_artifact()
    artifact.schema_version = ARTIFACT_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema version"):
        CurRankForecaster.from_artifact(artifact)


def test_unfitted_model_refuses_to_snapshot():
    with pytest.raises(RuntimeError):
        DeepARForecaster(**DEEP_KWARGS).to_artifact()
    with pytest.raises(RuntimeError):
        RandomForestForecaster(n_estimators=2).to_artifact()


def test_artifact_config_hash_is_stable_and_config_sensitive():
    a = ArimaForecaster(seed=1).to_artifact()
    b = ArimaForecaster(seed=1).to_artifact()
    c = ArimaForecaster(order=(1, 1, 1), seed=1).to_artifact()
    assert a.config_hash() == b.config_hash()
    assert a.config_hash() != c.config_hash()
