"""Tests for the from-scratch ML regressors and their forecaster wrappers."""

import numpy as np
import pytest

from repro.data import build_race_features
from repro.models import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestForecaster,
    RandomForestRegressor,
    SVR,
    SVRForecaster,
    XGBoostForecaster,
    build_pointwise_features,
    rbf_kernel,
)
from repro.simulation import RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def small_series():
    from dataclasses import replace

    track = replace(track_for_year("Indy500", 2018), total_laps=100, num_cars=14)
    race = RaceSimulator(track, event="Indy500", year=2017, seed=9).run()
    return build_race_features(race)


def _piecewise_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 2))
    y = np.where(X[:, 0] > 0.3, 3.0, -1.0) + 0.5 * X[:, 1] + rng.normal(0, 0.05, n)
    return X, y


# ----------------------------------------------------------------------
# decision tree
# ----------------------------------------------------------------------
def test_tree_fits_piecewise_constant_function():
    X, y = _piecewise_data()
    tree = DecisionTreeRegressor(max_depth=4, rng=0).fit(X, y)
    pred = tree.predict(X)
    assert np.mean(np.abs(pred - y)) < 0.5
    assert tree.depth() <= 4
    assert tree.num_leaves() >= 2


def test_tree_respects_max_depth_and_leaf_size():
    X, y = _piecewise_data(300)
    shallow = DecisionTreeRegressor(max_depth=1, rng=0).fit(X, y)
    assert shallow.depth() <= 1
    assert shallow.num_leaves() <= 2
    chunky = DecisionTreeRegressor(max_depth=10, min_samples_leaf=100, rng=0).fit(X, y)
    assert chunky.num_leaves() <= 4


def test_tree_predicts_mean_for_constant_target():
    X = np.random.default_rng(1).normal(size=(50, 3))
    y = np.full(50, 7.0)
    tree = DecisionTreeRegressor(rng=0).fit(X, y)
    np.testing.assert_allclose(tree.predict(X), 7.0)
    assert tree.num_leaves() == 1


def test_tree_input_validation():
    tree = DecisionTreeRegressor()
    with pytest.raises(ValueError):
        tree.fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        tree.fit(np.zeros((5,)), np.zeros(5))
    with pytest.raises(RuntimeError):
        DecisionTreeRegressor().predict(np.zeros((2, 2)))
    fitted = DecisionTreeRegressor(rng=0).fit(np.zeros((10, 2)), np.arange(10.0))
    with pytest.raises(ValueError):
        fitted.predict(np.zeros((2, 3)))


def test_tree_interpolates_smooth_function_better_with_depth():
    rng = np.random.default_rng(2)
    X = rng.uniform(-3, 3, size=(500, 1))
    y = np.sin(X[:, 0])
    shallow = DecisionTreeRegressor(max_depth=2, rng=0).fit(X, y)
    deep = DecisionTreeRegressor(max_depth=8, rng=0).fit(X, y)
    err_shallow = np.mean((shallow.predict(X) - y) ** 2)
    err_deep = np.mean((deep.predict(X) - y) ** 2)
    assert err_deep < err_shallow


# ----------------------------------------------------------------------
# random forest / boosting
# ----------------------------------------------------------------------
def test_forest_beats_or_matches_single_tree_on_noise():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(400, 4))
    y = X[:, 0] - 2 * X[:, 1] + rng.normal(0, 0.5, 400)
    X_test = rng.normal(size=(200, 4))
    y_test = X_test[:, 0] - 2 * X_test[:, 1]
    tree = DecisionTreeRegressor(max_depth=8, rng=0).fit(X, y)
    forest = RandomForestRegressor(n_estimators=20, max_depth=8, rng=0).fit(X, y)
    err_tree = np.mean((tree.predict(X_test) - y_test) ** 2)
    err_forest = np.mean((forest.predict(X_test) - y_test) ** 2)
    assert err_forest <= err_tree * 1.05


def test_forest_predict_std_nonnegative():
    X, y = _piecewise_data(200)
    forest = RandomForestRegressor(n_estimators=10, rng=0).fit(X, y)
    std = forest.predict_std(X[:20])
    assert np.all(std >= 0.0)


def test_forest_validation():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0)
    with pytest.raises(RuntimeError):
        RandomForestRegressor(rng=0).predict(np.zeros((2, 2)))


def test_gbm_training_loss_decreases_with_more_trees():
    X, y = _piecewise_data(300, seed=4)
    gbm = GradientBoostingRegressor(n_estimators=40, learning_rate=0.2, rng=0).fit(X, y)
    assert gbm.n_trees_ == 40
    assert gbm.train_scores_[-1] < gbm.train_scores_[0]
    assert np.mean(np.abs(gbm.predict(X) - y)) < 0.5


def test_gbm_early_stopping_halts_before_budget():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(200, 3))
    y = rng.normal(size=200)  # pure noise: validation stops improving quickly
    X_val = rng.normal(size=(100, 3))
    y_val = rng.normal(size=100)
    gbm = GradientBoostingRegressor(
        n_estimators=200, learning_rate=0.3, early_stopping_rounds=5, rng=0
    ).fit(X, y, eval_set=(X_val, y_val))
    assert gbm.n_trees_ < 200


def test_gbm_parameter_validation():
    with pytest.raises(ValueError):
        GradientBoostingRegressor(learning_rate=0.0)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(subsample=1.5)
    with pytest.raises(RuntimeError):
        GradientBoostingRegressor().predict(np.zeros((1, 1)))


# ----------------------------------------------------------------------
# SVR
# ----------------------------------------------------------------------
def test_rbf_kernel_properties():
    rng = np.random.default_rng(6)
    X = rng.normal(size=(10, 3))
    K = rbf_kernel(X, X, gamma=0.5)
    np.testing.assert_allclose(np.diag(K), 1.0)
    np.testing.assert_allclose(K, K.T)
    assert np.all(K > 0) and np.all(K <= 1.0 + 1e-12)


def test_svr_fits_nonlinear_function():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(400, 3))
    y = 2 * X[:, 0] - X[:, 1] + 0.5 * np.sin(3 * X[:, 2])
    svr = SVR(C=2.0, epsilon=0.05, rng=0).fit(X, y)
    pred = svr.predict(X)
    assert np.mean(np.abs(pred - y)) < 0.4
    assert 0.0 < svr.support_fraction <= 1.0


def test_svr_linear_kernel_recovers_linear_model():
    rng = np.random.default_rng(8)
    X = rng.normal(size=(200, 2))
    y = 3 * X[:, 0] - X[:, 1]
    svr = SVR(kernel="linear", C=5.0, epsilon=0.01, rng=0).fit(X, y)
    assert np.mean(np.abs(svr.predict(X) - y)) < 0.3


def test_svr_subsamples_large_training_sets():
    rng = np.random.default_rng(9)
    X = rng.normal(size=(500, 2))
    y = X[:, 0]
    svr = SVR(max_train_size=100, rng=0).fit(X, y)
    assert svr.X_.shape[0] == 100


def test_svr_validation():
    with pytest.raises(ValueError):
        SVR(C=0.0)
    with pytest.raises(ValueError):
        SVR(epsilon=-1)
    with pytest.raises(ValueError):
        SVR(kernel="poly")
    with pytest.raises(RuntimeError):
        SVR().predict(np.zeros((1, 1)))


# ----------------------------------------------------------------------
# pointwise forecaster wrappers
# ----------------------------------------------------------------------
def test_pointwise_features_vector_layout(small_series):
    s = small_series[0]
    feats = build_pointwise_features(s, origin=30, horizon=5)
    assert feats.shape == (11,)
    assert feats[0] == s.rank[30]
    assert feats[-1] == 5.0


def test_ml_forecasters_fit_and_forecast(small_series):
    train, test = small_series[:8], small_series[8:10]
    for forecaster in (
        RandomForestForecaster(n_estimators=5, max_depth=5, origin_stride=6, max_instances=1500),
        XGBoostForecaster(n_estimators=10, origin_stride=6, max_instances=1500),
        SVRForecaster(origin_stride=6, max_instances=800),
    ):
        forecaster.fit(train)
        fc = forecaster.forecast(test[0], origin=40, horizon=3, n_samples=7)
        assert fc.samples.shape == (7, 3)
        # deterministic point models: all samples identical
        np.testing.assert_allclose(fc.samples[0], fc.samples[-1])
        assert np.all(fc.samples >= 1.0) and np.all(fc.samples <= 33.0)


def test_ml_forecaster_requires_fit(small_series):
    model = RandomForestForecaster(n_estimators=2)
    with pytest.raises(RuntimeError):
        model.forecast(small_series[0], origin=30, horizon=2)


def test_ml_forecaster_short_horizon_predictions_stay_near_current_rank(small_series):
    """Rank changes over one lap are small, and a fitted tree ensemble should
    have learned that: its 1-lap-ahead forecasts stay close to the current
    rank on average, while long-horizon forecasts are allowed to move more."""
    model = XGBoostForecaster(n_estimators=40, origin_stride=3, max_instances=6000)
    model.fit(small_series)
    s = small_series[0]
    origins = range(20, len(s) - 25, 7)
    short_moves, long_moves = [], []
    for origin in origins:
        fc = model.forecast(s, origin, 20).point()
        short_moves.append(abs(fc[0] - s.rank[origin]))
        long_moves.append(abs(fc[-1] - s.rank[origin]))
    assert np.mean(short_moves) < 3.0
    assert np.mean(long_moves) >= np.mean(short_moves) - 0.5
    # predictions respond to the horizon feature (not constant across h)
    fc = model.forecast(s, 40, 20).point()
    assert np.std(fc) > 0.0
