"""Tests for the deep sequence models (RankSeqModel, PitModel, RankNet, Transformer)."""

import numpy as np
import pytest

from repro.data import ALL_COVARIATES, build_race_features, make_windows
from repro.data.loader import BatchLoader
from repro.models import (
    DeepARForecaster,
    PitModelMLP,
    RankNetForecaster,
    RankSeqModel,
    TransformerForecaster,
    TransformerSeqModel,
    plan_future_covariates,
)
from repro.nn.gradcheck import numerical_gradient, relative_error
from repro.simulation import RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def tiny_series():
    from dataclasses import replace

    track = replace(track_for_year("Indy500", 2018), total_laps=90, num_cars=12)
    race = RaceSimulator(track, event="Indy500", year=2017, seed=11).run()
    return build_race_features(race)


@pytest.fixture(scope="module")
def tiny_batch(tiny_series):
    ds = make_windows(tiny_series[:6], encoder_length=12, decoder_length=2,
                      rank_change_loss_weight=9.0)
    loader = BatchLoader(ds, batch_size=16, shuffle=True, rng=0)
    return next(iter(loader))


# ----------------------------------------------------------------------
# RankSeqModel (LSTM backbone)
# ----------------------------------------------------------------------
def test_rankseq_loss_and_backward_produces_gradients(tiny_batch):
    model = RankSeqModel(num_covariates=9, hidden_dim=8, num_layers=2,
                         encoder_length=12, decoder_length=2, rng=0)
    model.zero_grad()
    loss = model.loss_and_backward(tiny_batch)
    assert np.isfinite(loss)
    grad_norms = [np.abs(p.grad).max() for p in model.parameters()]
    assert max(grad_norms) > 0.0


def test_rankseq_validation_loss_matches_training_loss_value(tiny_batch):
    model = RankSeqModel(num_covariates=9, hidden_dim=8, encoder_length=12,
                         decoder_length=2, rng=0)
    model.eval()
    loss_a = model.validation_loss(tiny_batch)
    model.zero_grad()
    loss_b = model.loss_and_backward(tiny_batch)
    assert loss_a == pytest.approx(loss_b, rel=1e-10)


def test_rankseq_parameter_gradient_matches_numeric():
    """End-to-end gradient check through heads + stacked LSTM BPTT."""
    rng = np.random.default_rng(0)
    batch = {
        "target": rng.uniform(1, 10, size=(3, 8)),
        "covariates": rng.normal(size=(3, 8, 2)),
        "weight": np.array([1.0, 9.0, 1.0]),
    }
    model = RankSeqModel(num_covariates=2, hidden_dim=4, num_layers=2,
                         encoder_length=6, decoder_length=2, rng=1)
    model.eval()
    model.zero_grad()
    model.loss_and_backward(batch)
    checked = 0
    for param in [model.lstm.cells[0].w_x, model.lstm.cells[1].w_h, model.head.weight]:
        analytic = param.grad.copy()
        numeric = numerical_gradient(lambda: model.validation_loss(batch), param.data)
        assert relative_error(analytic, numeric) < 1e-4
        checked += 1
    assert checked == 3


def test_rankseq_training_reduces_loss(tiny_series):
    ds = make_windows(tiny_series[:6], encoder_length=12, decoder_length=2)
    loader = BatchLoader(ds, batch_size=32, shuffle=True, rng=0)
    model = RankSeqModel(num_covariates=9, hidden_dim=12, encoder_length=12,
                         decoder_length=2, rng=0)
    from repro.nn import Adam, clip_grad_norm

    opt = Adam(model.parameters(), lr=5e-3)
    losses = []
    for epoch in range(4):
        epoch_losses = []
        for batch in loader:
            model.zero_grad()
            epoch_losses.append(model.loss_and_backward(batch))
            clip_grad_norm(opt.parameters, 10.0)
            opt.step()
        losses.append(np.mean(epoch_losses))
    assert losses[-1] < losses[0]


def test_rankseq_forecast_samples_shape_and_scale(tiny_series):
    model = RankSeqModel(num_covariates=9, hidden_dim=8, encoder_length=12,
                         decoder_length=2, rng=0)
    s = tiny_series[0]
    hist_t = s.rank[:20]
    hist_c = s.covariates[:20]
    future_c = s.covariates[20:26]
    samples = model.forecast_samples(hist_t, hist_c, future_c, n_samples=30)
    assert samples.shape == (30, 6)
    assert np.all(np.isfinite(samples))


def test_rankseq_multivariate_target_dim(tiny_batch):
    target = np.stack([tiny_batch["target"]] * 3, axis=-1)
    batch = {**tiny_batch, "target": target,
             "covariates": np.zeros(tiny_batch["covariates"].shape[:2] + (0,))}
    model = RankSeqModel(num_covariates=0, hidden_dim=8, target_dim=3,
                         encoder_length=12, decoder_length=2, rng=0)
    model.zero_grad()
    loss = model.loss_and_backward(batch)
    assert np.isfinite(loss)
    samples = model.forecast_samples(
        np.tile(tiny_batch["target"][0][:12, None], (1, 3)),
        np.zeros((12, 0)), np.zeros((3, 0)), n_samples=5,
    )
    assert samples.shape == (5, 3)


def test_rankseq_rejects_bad_shapes(tiny_batch):
    model = RankSeqModel(num_covariates=9, hidden_dim=8, encoder_length=12,
                         decoder_length=2, rng=0)
    bad = {**tiny_batch, "covariates": tiny_batch["covariates"][:, :, :3]}
    with pytest.raises(ValueError):
        model.loss_and_backward(bad)
    with pytest.raises(ValueError):
        RankSeqModel(num_covariates=1, target_dim=0)


# ----------------------------------------------------------------------
# PitModel
# ----------------------------------------------------------------------
def test_pitmodel_fit_and_sample(tiny_series):
    pit = PitModelMLP(hidden=(16,), epochs=10, seed=0)
    pit.fit(tiny_series[:8])
    assert pit.fitted_
    assert pit.training_loss_[-1] <= pit.training_loss_[0] + 1e-6
    s = tiny_series[0]
    draws = pit.sample_laps_to_pit(pit._features_at(s, 20), n_samples=50)
    assert draws.shape == (50, 1)
    assert np.all(draws >= 1) and np.all(draws <= pit.max_horizon)


def test_pitmodel_requires_fit_before_predicting(tiny_series):
    pit = PitModelMLP()
    with pytest.raises(RuntimeError):
        pit.predict_distribution(np.zeros(5))


def test_pitmodel_expected_pit_sooner_for_older_tires(tiny_series):
    pit = PitModelMLP(hidden=(16,), epochs=25, seed=0)
    pit.fit(tiny_series)
    fresh = np.array([0.0, 2.0, 0.0, 5.0, 0.0])   # just pitted
    worn = np.array([0.0, 30.0, 0.0, 5.0, 0.0])   # 30 laps into the stint
    mu_fresh = float(pit.predict_distribution(fresh).mu[0])
    mu_worn = float(pit.predict_distribution(worn).mu[0])
    assert mu_worn < mu_fresh


def test_plan_future_covariates_properties(tiny_series):
    pit = PitModelMLP(hidden=(8,), epochs=5, seed=0)
    pit.fit(tiny_series[:6])
    s = tiny_series[0]
    rng = np.random.default_rng(0)
    plan = plan_future_covariates(pit, s, origin=20, horizon=30, rng=rng)
    assert plan.shape == (30, len(ALL_COVARIATES))
    track_col = ALL_COVARIATES.index("track_status")
    lap_col = ALL_COVARIATES.index("lap_status")
    age_col = ALL_COVARIATES.index("pit_age")
    # Algorithm 2: future TrackStatus assumed green
    np.testing.assert_allclose(plan[:, track_col], 0.0)
    assert set(np.unique(plan[:, lap_col])) <= {0.0, 1.0}
    # pit age resets to zero right after each planned stop
    pits = np.where(plan[:, lap_col] > 0.5)[0]
    for p in pits:
        assert plan[p, age_col] == 0.0


# ----------------------------------------------------------------------
# forecaster wrappers (smoke-level, tiny configs)
# ----------------------------------------------------------------------
def _tiny_kwargs():
    return dict(encoder_length=12, decoder_length=2, hidden_dim=8, epochs=2,
                batch_size=32, max_train_windows=150, seed=0)


def test_deepar_forecaster_end_to_end(tiny_series):
    model = DeepARForecaster(**_tiny_kwargs())
    model.fit(tiny_series[:6], val_series=tiny_series[6:8])
    assert model.history_ is not None and model.history_.num_epochs >= 1
    fc = model.forecast(tiny_series[8], origin=30, horizon=2, n_samples=12)
    assert fc.samples.shape == (12, 2)
    assert np.all(fc.samples >= 1.0)
    assert model.feature_spec.num_covariates == 0


@pytest.mark.parametrize("variant", ["oracle", "mlp", "joint"])
def test_ranknet_variants_end_to_end(tiny_series, variant):
    model = RankNetForecaster(variant=variant, **_tiny_kwargs())
    model.fit(tiny_series[:6])
    fc = model.forecast(tiny_series[7], origin=30, horizon=3, n_samples=10)
    assert fc.samples.shape == (10, 3)
    assert np.all(np.isfinite(fc.samples))
    if variant == "mlp":
        assert model.pit_model is not None and model.pit_model.fitted_
    if variant == "joint":
        assert model.model.target_dim == 3


def test_ranknet_invalid_variant():
    with pytest.raises(ValueError):
        RankNetForecaster(variant="magic")


def test_ranknet_forecast_requires_fit(tiny_series):
    model = RankNetForecaster(variant="oracle", **_tiny_kwargs())
    with pytest.raises(RuntimeError):
        model.forecast(tiny_series[0], origin=30, horizon=2)


def test_ranknet_oracle_pads_future_covariates_at_race_end(tiny_series):
    model = RankNetForecaster(variant="oracle", **_tiny_kwargs())
    model.fit(tiny_series[:6])
    s = tiny_series[7]
    fc = model.forecast(s, origin=len(s) - 3, horizon=6, n_samples=5)
    assert fc.samples.shape == (5, 6)


# ----------------------------------------------------------------------
# Transformer backbone
# ----------------------------------------------------------------------
def test_transformer_seq_model_loss_and_forecast(tiny_batch):
    model = TransformerSeqModel(num_covariates=9, d_model=16, num_heads=4, d_ff=32,
                                num_encoder_layers=1, num_decoder_layers=1,
                                encoder_length=12, decoder_length=2, rng=0)
    model.zero_grad()
    loss = model.loss_and_backward(tiny_batch)
    assert np.isfinite(loss)
    assert max(np.abs(p.grad).max() for p in model.parameters()) > 0.0
    val = model.validation_loss(tiny_batch)
    assert np.isfinite(val)
    hist_t = tiny_batch["target"][0][:12]
    hist_c = tiny_batch["covariates"][0][:12]
    fut_c = tiny_batch["covariates"][0][12:]
    samples = model.forecast_samples(hist_t, hist_c, fut_c, n_samples=8)
    assert samples.shape == (8, 2)


def test_transformer_training_reduces_loss(tiny_series):
    ds = make_windows(tiny_series[:5], encoder_length=12, decoder_length=2)
    loader = BatchLoader(ds, batch_size=32, shuffle=True, rng=0)
    model = TransformerSeqModel(num_covariates=9, d_model=16, num_heads=4, d_ff=32,
                                num_encoder_layers=1, num_decoder_layers=1,
                                encoder_length=12, decoder_length=2, rng=0)
    from repro.nn import Adam, clip_grad_norm

    opt = Adam(model.parameters(), lr=3e-3)
    losses = []
    for _ in range(3):
        batch_losses = []
        for batch in loader:
            model.zero_grad()
            batch_losses.append(model.loss_and_backward(batch))
            clip_grad_norm(opt.parameters, 10.0)
            opt.step()
        losses.append(np.mean(batch_losses))
    assert losses[-1] < losses[0]


def test_transformer_forecaster_wrapper(tiny_series):
    model = TransformerForecaster(variant="oracle", d_model=16, num_heads=4,
                                  num_encoder_layers=1, **_tiny_kwargs())
    model.fit(tiny_series[:5])
    fc = model.forecast(tiny_series[6], origin=30, horizon=2, n_samples=8)
    assert fc.samples.shape == (8, 2)


def test_transformer_rejects_joint_variant():
    with pytest.raises(ValueError):
        TransformerForecaster(variant="joint")
