"""Tests for the CurRank and ARIMA baselines."""

import numpy as np
import pytest

from repro.data import build_race_features
from repro.models import ArimaForecaster, CurRankForecaster
from repro.models.arima import _difference, _lag_matrix
from repro.simulation import RaceSimulator, track_for_year


@pytest.fixture(scope="module")
def series():
    from dataclasses import replace

    track = replace(track_for_year("Indy500", 2018), total_laps=120, num_cars=16)
    race = RaceSimulator(track, event="Indy500", year=2018, seed=5).run()
    return build_race_features(race)


def test_currank_repeats_last_observed_rank(series):
    model = CurRankForecaster().fit(series)
    s = series[0]
    fc = model.forecast(s, origin=50, horizon=4, n_samples=10)
    assert fc.samples.shape == (10, 4)
    np.testing.assert_allclose(fc.point(), s.rank[50])
    np.testing.assert_allclose(fc.quantile(0.9), s.rank[50])
    assert fc.race_id == s.race_id and fc.car_id == s.car_id


def test_currank_origin_out_of_range(series):
    model = CurRankForecaster().fit(series)
    with pytest.raises(IndexError):
        model.forecast(series[0], origin=10_000, horizon=2)


def test_probabilistic_forecast_statistics():
    from repro.models import ProbabilisticForecast

    samples = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
    fc = ProbabilisticForecast(samples=samples, origin=0)
    np.testing.assert_allclose(fc.median(), [3.0, 4.0])
    np.testing.assert_allclose(fc.mean(), [3.0, 4.0])
    assert fc.horizon == 2 and fc.n_samples == 3
    np.testing.assert_allclose(fc.quantile(1.0), [5.0, 6.0])


# ----------------------------------------------------------------------
# ARIMA internals
# ----------------------------------------------------------------------
def test_difference_and_lag_matrix_helpers():
    x = np.array([1.0, 3.0, 6.0, 10.0])
    np.testing.assert_allclose(_difference(x, 1), [2.0, 3.0, 4.0])
    np.testing.assert_allclose(_difference(x, 0), x)
    X, y = _lag_matrix(np.array([1.0, 2.0, 3.0, 4.0, 5.0]), lags=2)
    np.testing.assert_allclose(y, [3.0, 4.0, 5.0])
    np.testing.assert_allclose(X[:, 0], [2.0, 3.0, 4.0])  # lag 1
    np.testing.assert_allclose(X[:, 1], [1.0, 2.0, 3.0])  # lag 2
    with pytest.raises(ValueError):
        _lag_matrix(x, 0)


def test_arima_recovers_ar1_dynamics():
    rng = np.random.default_rng(0)
    phi = 0.8
    n = 400
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = phi * x[t - 1] + rng.normal(0, 0.5)
    model = ArimaForecaster(order=(1, 0, 0)).fit_series(x)
    assert model.ar[0] == pytest.approx(phi, abs=0.1)
    mean, std = model.forecast(5)
    assert mean.shape == (5,) and std.shape == (5,)
    # AR(1) forecasts decay toward the mean and uncertainty grows
    assert abs(mean[4]) <= abs(mean[0]) + 1e-9
    assert np.all(np.diff(std) >= -1e-12)


def test_arima_forecast_interval_widens_with_horizon(series):
    model = ArimaForecaster(order=(2, 1, 1), seed=1).fit(series)
    s = series[1]
    fc = model.forecast(s, origin=60, horizon=8, n_samples=400)
    assert fc.samples.shape == (400, 8)
    spread_first = fc.quantile(0.9)[0] - fc.quantile(0.1)[0]
    spread_last = fc.quantile(0.9)[-1] - fc.quantile(0.1)[-1]
    assert spread_last >= spread_first - 1e-6


def test_arima_forecasts_stay_in_valid_rank_range(series):
    model = ArimaForecaster(seed=2).fit(series)
    for s in series[:4]:
        fc = model.forecast(s, origin=40, horizon=4, n_samples=50)
        assert fc.samples.min() >= 1.0
        assert fc.samples.max() <= 33.0


def test_arima_short_history_falls_back_gracefully(series):
    model = ArimaForecaster(order=(2, 1, 1), min_history=12, seed=3).fit(series)
    s = series[2]
    fc = model.forecast(s, origin=3, horizon=2, n_samples=20)
    assert fc.samples.shape == (20, 2)
    assert np.all(np.isfinite(fc.samples))


def test_arima_invalid_order_rejected():
    with pytest.raises(ValueError):
        ArimaForecaster(order=(-1, 0, 0))


def test_arima_origin_bounds(series):
    model = ArimaForecaster().fit(series)
    with pytest.raises(IndexError):
        model.forecast(series[0], origin=0, horizon=2)
