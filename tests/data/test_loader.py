"""Tests for the batch loader (bucketing and preallocated buffers)."""

import numpy as np
import pytest

from repro.data.loader import BatchLoader
from repro.data.schema import ALL_COVARIATES
from repro.data.windows import WindowDataset


def make_dataset(n=20, enc=6, dec=2, pad_lengths=None, seed=0):
    """Synthetic WindowDataset; ``pad_lengths[i]`` laps of zero left-padding."""
    rng = np.random.default_rng(seed)
    total = enc + dec
    target = rng.uniform(1, 30, size=(n, total))
    covariates = rng.normal(size=(n, total, len(ALL_COVARIATES)))
    pad_lengths = pad_lengths if pad_lengths is not None else [0] * n
    for i, pad in enumerate(pad_lengths):
        target[i, :pad] = 0.0
        covariates[i, :pad] = 0.0
    return WindowDataset(
        encoder_length=enc,
        decoder_length=dec,
        target=target,
        covariates=covariates,
        car_index=np.arange(n, dtype=np.int64),
        weight=np.ones(n),
        meta=[("race", i, enc - 1) for i in range(n)],
    )


def collect(loader):
    return [
        {k: np.array(v, copy=True) for k, v in batch.items()} for batch in loader
    ]


def test_plain_loader_covers_every_instance_once():
    ds = make_dataset(n=10)
    loader = BatchLoader(ds, batch_size=4, shuffle=False)
    batches = collect(loader)
    assert [b["target"].shape[0] for b in batches] == [4, 4, 2]
    seen = np.concatenate([b["car_index"] for b in batches])
    assert sorted(seen.tolist()) == list(range(10))


def test_bucketed_loader_groups_by_observed_length():
    pads = [0] * 8 + [3] * 5 + [5] * 4
    ds = make_dataset(n=17, pad_lengths=pads)
    loader = BatchLoader(ds, batch_size=4, shuffle=True, rng=0, bucket_by_length=True)
    lengths = loader._history_lengths
    np.testing.assert_array_equal(np.sort(np.unique(lengths)), [3, 5, 8])
    batches = collect(loader)
    assert len(batches) == len(loader)
    seen = []
    for batch in batches:
        idx = batch["car_index"]
        seen.extend(idx.tolist())
        # every batch is homogeneous in observed history length
        assert len({lengths[i] for i in idx}) == 1
    assert sorted(seen) == list(range(17))


def test_bucketed_loader_drop_last_drops_partial_buckets():
    pads = [0] * 5 + [2] * 3
    ds = make_dataset(n=8, pad_lengths=pads)
    loader = BatchLoader(ds, batch_size=4, shuffle=False, bucket_by_length=True,
                         drop_last=True)
    batches = collect(loader)
    assert len(batches) == len(loader) == 1
    assert batches[0]["target"].shape[0] == 4


def test_preallocated_loader_yields_identical_batches():
    ds = make_dataset(n=11)
    plain = collect(BatchLoader(ds, batch_size=4, shuffle=True, rng=3))
    pre = collect(BatchLoader(ds, batch_size=4, shuffle=True, rng=3, preallocate=True))
    assert len(plain) == len(pre)
    for a, b in zip(plain, pre):
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


def test_preallocated_buffers_are_reused_between_batches():
    ds = make_dataset(n=12)
    loader = BatchLoader(ds, batch_size=4, shuffle=False, preallocate=True)
    bases = set()
    for batch in loader:
        arr = batch["target"]
        bases.add(id(arr.base if arr.base is not None else arr))
    assert len(bases) == 1, "all batches should view one persistent buffer"


def test_loader_rejects_bad_batch_size():
    ds = make_dataset(n=4)
    with pytest.raises(ValueError):
        BatchLoader(ds, batch_size=0)
