"""Tests for stint extraction, window datasets, scalers and the batch loader."""

import numpy as np
import pytest

from repro.data import (
    BatchLoader,
    FeatureSpec,
    MeanScaler,
    StandardScaler,
    build_race_features,
    extract_stints,
    extract_window,
    make_windows,
    next_pit_targets,
    pit_statistics,
    stint_rank_changes,
)
from repro.data.windows import rank_change_weight
from repro.simulation import TRACKS, simulate_race


@pytest.fixture(scope="module")
def race():
    return simulate_race("Indy500", 2018, seed=33)


@pytest.fixture(scope="module")
def series_list(race):
    return build_race_features(race)


# ----------------------------------------------------------------------
# stints
# ----------------------------------------------------------------------
def test_extract_stints_partitions_the_race(series_list):
    s = series_list[0]
    stints = extract_stints(s)
    assert len(stints) == int(s.is_pit.sum()) or len(stints) == int(s.is_pit.sum()) - 0
    for stint in stints:
        assert stint.length >= 1
        assert s.is_pit[stint.end_index]
        assert stint.end_index - stint.start_index == stint.length
        assert stint.race_id == s.race_id


def test_stint_lengths_bounded_by_fuel_window(series_list):
    window = TRACKS["Indy500"].fuel_window_laps
    for s in series_list:
        for stint in extract_stints(s):
            assert stint.length <= window + 1


def test_stint_rank_change_sign_convention(series_list):
    stints = stint_rank_changes(series_list)
    assert stints
    any_change = [s for s in stints if s.rank_change != 0]
    assert any_change, "expected at least some stints with rank movement"
    example = any_change[0]
    assert example.rank_change == example.rank_at_end - example.rank_at_start


def test_pit_statistics_structure_and_fig4_shape(series_list):
    stats = pit_statistics(series_list)
    for kind in ("normal", "caution"):
        assert set(stats[kind]) == {"stint_lengths", "pit_laps", "rank_changes"}
    normal = stats["normal"]["stint_lengths"]
    caution = stats["caution"]["stint_lengths"]
    assert normal.size > 0 and caution.size > 0
    # Fig. 4(a): no stint exceeds the fuel window; caution stints are more dispersed
    assert normal.max() <= TRACKS["Indy500"].fuel_window_laps + 1
    assert caution.std() >= 0.5 * normal.std()
    # Fig. 4(d): caution pits hurt rank less than normal pits on average
    assert (
        stats["caution"]["rank_changes"].mean()
        <= stats["normal"]["rank_changes"].mean() + 1.0
    )


def test_next_pit_targets_decrease_towards_pit(series_list):
    s = series_list[0]
    instances = next_pit_targets(s)
    assert instances
    targets = np.array([inst["target"] for inst in instances])
    assert targets.min() >= 1.0
    # walking one lap forward reduces the laps-to-pit by one (away from clipping)
    for a, b in zip(instances[:-1], instances[1:]):
        if a["target"] < 60 and b["target"] < 60 and a["target"] > 1:
            assert b["target"] in (a["target"] - 1, a["target"] - 1 + 0)
            break
    for inst in instances[:10]:
        assert inst["features"].shape == (5,)


def test_next_pit_targets_empty_for_car_without_pits(race, series_list):
    s = series_list[0]
    import copy

    no_pit = copy.deepcopy(s)
    no_pit.covariates[:, 1] = 0.0  # lap_status column
    assert next_pit_targets(no_pit) == []


# ----------------------------------------------------------------------
# windows
# ----------------------------------------------------------------------
def test_extract_window_full_history(series_list):
    s = series_list[0]
    enc, dec = 20, 2
    origin = 40
    target, cov = extract_window(s, origin, enc, dec)
    assert target.shape == (enc + dec,)
    assert cov.shape == (enc + dec, 9)
    np.testing.assert_array_equal(target[:enc], s.rank[origin - enc + 1 : origin + 1])
    np.testing.assert_array_equal(target[enc:], s.rank[origin + 1 : origin + 1 + dec])


def test_extract_window_left_padding(series_list):
    s = series_list[0]
    enc, dec = 30, 2
    origin = 10
    target, cov = extract_window(s, origin, enc, dec, pad_value=-1.0)
    pad = enc - (origin + 1)
    np.testing.assert_array_equal(target[:pad], -1.0)
    np.testing.assert_array_equal(cov[:pad], 0.0)
    np.testing.assert_array_equal(target[pad : pad + origin + 1], s.rank[: origin + 1])


def test_extract_window_out_of_range(series_list):
    s = series_list[0]
    with pytest.raises(IndexError):
        extract_window(s, len(s) - 1, 10, 2)


def test_make_windows_counts_and_meta(series_list):
    enc, dec = 30, 2
    ds = make_windows(series_list[:3], encoder_length=enc, decoder_length=dec)
    expected = sum(max(len(s) - dec - enc + 1, 0) for s in series_list[:3])
    assert len(ds) == expected
    assert ds.target.shape == (expected, enc + dec)
    assert ds.covariates.shape == (expected, enc + dec, 9)
    assert len(ds.meta) == expected
    assert ds.total_length == enc + dec


def test_make_windows_weighting_marks_rank_changes(series_list):
    ds = make_windows(series_list[:5], encoder_length=20, decoder_length=2,
                      rank_change_loss_weight=9.0)
    assert set(np.unique(ds.weight)) <= {1.0, 9.0}
    changed = ds.weight == 9.0
    assert changed.any() and (~changed).any()
    # windows marked as changed really do change rank in the decoder span
    anchor = ds.target[:, ds.encoder_length - 1]
    future = ds.target[:, ds.encoder_length :]
    really_changed = np.any(np.abs(future - anchor[:, None]) > 0.5, axis=1)
    np.testing.assert_array_equal(changed, really_changed)


def test_rank_change_weight_helper():
    assert rank_change_weight(5, np.array([5.0, 5.0]), 9.0) == 1.0
    assert rank_change_weight(5, np.array([5.0, 6.0]), 9.0) == 9.0


def test_make_windows_shared_vocabulary(series_list):
    ds_train = make_windows(series_list[:4], encoder_length=20, decoder_length=2)
    ds_test = make_windows(
        series_list[:4], encoder_length=20, decoder_length=2,
        car_vocabulary=ds_train.car_vocabulary,
    )
    assert ds_train.car_vocabulary == ds_test.car_vocabulary
    np.testing.assert_array_equal(np.unique(ds_train.car_index), np.unique(ds_test.car_index))


def test_make_windows_empty_input():
    ds = make_windows([], encoder_length=10, decoder_length=2)
    assert len(ds) == 0
    assert ds.target.shape == (0, 12)


def test_window_dataset_subset_and_select(series_list):
    ds = make_windows(series_list[:3], encoder_length=20, decoder_length=2)
    sub = ds.subset([0, 1, 2, 3])
    assert len(sub) == 4
    assert sub.meta == ds.meta[:4]
    base_cov = ds.select_covariates(FeatureSpec(use_context=False, use_shift=False))
    assert base_cov.shape[-1] == 4
    none_cov = ds.select_covariates(
        FeatureSpec(use_race_status=False, use_context=False, use_shift=False)
    )
    assert none_cov.shape[-1] == 0


# ----------------------------------------------------------------------
# scalers
# ----------------------------------------------------------------------
def test_standard_scaler_round_trip():
    rng = np.random.default_rng(0)
    x = rng.normal(loc=5.0, scale=3.0, size=(100, 4))
    scaler = StandardScaler().fit(x)
    z = scaler.transform(x)
    np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
    np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)
    np.testing.assert_allclose(scaler.inverse_transform(z), x, atol=1e-10)


def test_standard_scaler_requires_fit():
    with pytest.raises(RuntimeError):
        StandardScaler().transform(np.zeros(3))


def test_standard_scaler_constant_feature_safe():
    x = np.ones((10, 2))
    z = StandardScaler().fit_transform(x)
    assert np.all(np.isfinite(z))


def test_mean_scaler_round_trip():
    scaler = MeanScaler()
    enc = np.array([[10.0, 12.0, 14.0], [2.0, 2.0, 2.0]])
    factors = scaler.scale_factors(enc)
    np.testing.assert_allclose(factors, [13.0, 3.0])
    scaled = scaler.scale(enc, factors)
    np.testing.assert_allclose(scaler.unscale(scaled, factors), enc)


# ----------------------------------------------------------------------
# batch loader
# ----------------------------------------------------------------------
def test_batch_loader_covers_dataset_once(series_list):
    ds = make_windows(series_list[:3], encoder_length=20, decoder_length=2)
    loader = BatchLoader(ds, batch_size=64, shuffle=True, rng=0)
    seen = 0
    for batch in loader:
        seen += batch["target"].shape[0]
        assert batch["covariates"].shape[0] == batch["target"].shape[0]
        assert set(batch) == {"target", "covariates", "car_index", "weight"}
    assert seen == len(ds)
    assert len(loader) == int(np.ceil(len(ds) / 64))


def test_batch_loader_drop_last(series_list):
    ds = make_windows(series_list[:2], encoder_length=20, decoder_length=2)
    loader = BatchLoader(ds, batch_size=32, drop_last=True, rng=0)
    for batch in loader:
        assert batch["target"].shape[0] == 32


def test_batch_loader_feature_spec_subsets_covariates(series_list):
    ds = make_windows(series_list[:2], encoder_length=20, decoder_length=2)
    loader = BatchLoader(ds, batch_size=16, spec=FeatureSpec(use_context=False, use_shift=False), rng=0)
    batch = next(iter(loader))
    assert batch["covariates"].shape[-1] == 4


def test_batch_loader_rejects_bad_batch_size(series_list):
    ds = make_windows(series_list[:1], encoder_length=20, decoder_length=2)
    with pytest.raises(ValueError):
        BatchLoader(ds, batch_size=0)


def test_batch_loader_shuffle_changes_order_but_not_content(series_list):
    ds = make_windows(series_list[:2], encoder_length=20, decoder_length=2)
    a = np.concatenate([b["target"] for b in BatchLoader(ds, 32, shuffle=True, rng=1)])
    b = np.concatenate([b["target"] for b in BatchLoader(ds, 32, shuffle=True, rng=2)])
    assert a.shape == b.shape
    assert not np.array_equal(a, b)
    np.testing.assert_allclose(np.sort(a.sum(axis=1)), np.sort(b.sum(axis=1)))
