"""LiveFeatureBuilder: streamed features equal the batch-built ones bitwise."""

from dataclasses import replace

import numpy as np
import pytest

from repro.data.features import LiveFeatureBuilder, build_race_features
from repro.simulation import RaceSimulator, track_for_year
from repro.simulation.telemetry import RaceTelemetry

SHIFT_LAG = 2


@pytest.fixture(scope="module")
def race():
    track = replace(track_for_year("Indy500", 2018), total_laps=50, num_cars=10)
    return RaceSimulator(track, event="Indy500", year=2018, seed=21).run()


def _truncated(race, max_lap):
    records = [r for r in race.to_records() if r.lap <= max_lap]
    return RaceTelemetry(event=race.event, year=race.year, track=race.track, records=records)


def _builder_for(race):
    return LiveFeatureBuilder(race_id=race.race_id, event=race.event, year=race.year)


def _assert_series_equal(built, reference):
    assert [s.car_id for s in built] == [s.car_id for s in reference]
    for s, r in zip(built, reference):
        assert (s.race_id, s.event, s.year) == (r.race_id, r.event, r.year)
        np.testing.assert_array_equal(s.laps, r.laps)
        np.testing.assert_array_equal(s.rank, r.rank)
        np.testing.assert_array_equal(s.lap_time, r.lap_time)
        np.testing.assert_array_equal(s.time_behind_leader, r.time_behind_leader)
        np.testing.assert_array_equal(s.covariates, r.covariates)
        assert s.covariates.dtype == r.covariates.dtype
        assert s.laps.dtype == r.laps.dtype


def test_full_feed_matches_batch_build_bitwise(race):
    builder = _builder_for(race)
    for lap, records in race.iter_laps():
        builder.observe_lap(lap, records)
    _assert_series_equal(builder.series(), build_race_features(race))


def test_partial_feed_matches_batch_build_on_truncated_race(race):
    builder = _builder_for(race)
    checkpoints = {12, 25, 37, race.num_laps}
    for lap, records in race.iter_laps():
        builder.observe_lap(lap, records)
        if lap in checkpoints:
            _assert_series_equal(builder.series(), build_race_features(_truncated(race, lap)))


def test_prefix_entries_are_final(race):
    """Everything but the trailing shift positions never changes again."""
    builder = _builder_for(race)
    final = {s.car_id: s for s in build_race_features(race)}
    for lap, records in race.iter_laps():
        builder.observe_lap(lap, records)
        for s in builder.series():
            stable = len(s) - SHIFT_LAG
            if stable <= 0:
                continue
            reference = final[s.car_id]
            np.testing.assert_array_equal(
                s.covariates[:stable], reference.covariates[: len(s)][:stable]
            )


def test_records_accepted_as_wire_dicts_and_status_strings(race):
    from_records = _builder_for(race)
    from_dicts = _builder_for(race)
    for lap, records in race.iter_laps():
        from_records.observe_lap(lap, records)
        from_dicts.observe_lap(
            lap,
            [
                {
                    "car_id": r.car_id,
                    "rank": r.rank,
                    "lap_time": r.lap_time,
                    "time_behind_leader": r.time_behind_leader,
                    # textual log statuses instead of booleans
                    "lap_status": r.lap_status,
                    "track_status": r.track_status,
                }
                for r in records
            ],
        )
    _assert_series_equal(from_dicts.series(), from_records.series())


def test_min_laps_filter_and_monotonic_laps(race):
    builder = _builder_for(race)
    lap_feed = race.iter_laps()
    for _ in range(5):
        builder.observe_lap(*next(lap_feed))
    assert builder.series() == []  # nobody has min_laps yet
    assert builder.num_cars > 0
    with pytest.raises(ValueError, match="increasing order"):
        builder.observe_lap(3, [])


def test_gap_in_a_cars_records_is_rejected():
    """A retired car cannot rejoin: array position must stay == lap position."""
    builder = LiveFeatureBuilder()
    row = {"car_id": 1, "rank": 1, "lap_time": 90.0, "time_behind_leader": 0.0,
           "pit": False, "caution": False}
    builder.observe_lap(1, [row])
    builder.observe_lap(2, [])       # car 1 misses lap 2 -> retired
    with pytest.raises(ValueError, match="gap in car 1"):
        builder.observe_lap(3, [row])
    # a genuinely new car may still join mid-race
    builder.observe_lap(4, [{**row, "car_id": 2}])


def test_missing_record_field_is_an_error():
    builder = LiveFeatureBuilder()
    with pytest.raises(ValueError, match="rank"):
        builder.observe_lap(1, [{"car_id": 1, "lap_time": 90.0}])
