"""Tests for the feature engineering (Table I + Fig. 7 features)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ALL_COVARIATES,
    FeatureSpec,
    accumulate_age,
    build_race_features,
    caution_laps_since_pit,
    leader_pit_count,
    shift_forward,
    total_pit_count,
)
from repro.simulation import simulate_race


@pytest.fixture(scope="module")
def race():
    return simulate_race("Indy500", 2018, seed=21)


@pytest.fixture(scope="module")
def series_list(race):
    return build_race_features(race)


def test_accumulate_age_resets_on_pit():
    pits = np.array([0, 0, 0, 1, 0, 0, 1, 0], dtype=bool)
    age = accumulate_age(pits)
    np.testing.assert_array_equal(age, [0, 1, 2, 0, 1, 2, 0, 1])


def test_accumulate_age_without_pits_counts_from_start():
    age = accumulate_age(np.zeros(5, dtype=bool))
    np.testing.assert_array_equal(age, [0, 1, 2, 3, 4])


def test_caution_laps_since_pit_counts_only_caution_laps():
    pits = np.array([0, 0, 0, 1, 0, 0, 0], dtype=bool)
    caution = np.array([1, 1, 0, 0, 1, 0, 1], dtype=bool)
    out = caution_laps_since_pit(pits, caution)
    np.testing.assert_array_equal(out, [0, 1, 2, 0, 0, 1, 1])


def test_caution_laps_since_pit_shape_mismatch():
    with pytest.raises(ValueError):
        caution_laps_since_pit(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))


def test_shift_forward_behaviour():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    np.testing.assert_array_equal(shift_forward(x, 2), [3.0, 4.0, 0.0, 0.0])
    np.testing.assert_array_equal(shift_forward(x, 0), x)
    np.testing.assert_array_equal(shift_forward(x, 10, fill=-1), [-1, -1, -1, -1])
    with pytest.raises(ValueError):
        shift_forward(x, -1)


def test_total_pit_count_matches_manual_count(race):
    counts = total_pit_count(race)
    lap = int(np.unique(race.lap[race.is_pit])[0])
    manual = int(np.count_nonzero(race.is_pit[race.lap == lap]))
    assert counts[lap] == manual
    assert all(v >= 0 for v in counts.values())


def test_leader_pit_count_bounded_by_total(race):
    leaders = leader_pit_count(race, top_k=10)
    totals = total_pit_count(race)
    for lap, count in leaders.items():
        assert 0 <= count <= min(totals[lap], 10)


def test_build_race_features_covers_all_cars_with_enough_laps(race, series_list):
    expected = [c for c in race.car_ids() if len(race.car_laps(c)) >= 10]
    assert [s.car_id for s in series_list] == expected
    for s in series_list[:3]:
        assert s.covariates.shape == (len(s), len(ALL_COVARIATES))
        assert s.rank.shape == s.lap_time.shape == s.laps.shape


def test_feature_columns_consistent_with_telemetry(race, series_list):
    s = series_list[0]
    cl = race.car_laps(s.car_id)
    np.testing.assert_array_equal(s.covariate("lap_status") > 0.5, cl.is_pit)
    np.testing.assert_array_equal(s.covariate("track_status") > 0.5, cl.is_caution)
    np.testing.assert_array_equal(s.rank, cl.rank.astype(float))


def test_pit_age_zero_on_pit_laps(series_list):
    for s in series_list[:5]:
        pit_age = s.covariate("pit_age")
        assert np.all(pit_age[s.is_pit] == 0.0)
        assert np.all(pit_age >= 0.0)
        # pit age never exceeds the race length
        assert pit_age.max() < len(s)


def test_shift_features_look_into_the_future(series_list):
    s = series_list[0]
    lag = 2
    shifted = s.covariate("shift_lap_status")
    plain = s.covariate("lap_status")
    np.testing.assert_array_equal(shifted[:-lag], plain[lag:])
    np.testing.assert_array_equal(shifted[-lag:], 0.0)


def test_feature_spec_selects_groups():
    full = FeatureSpec()
    assert full.num_covariates == len(ALL_COVARIATES)
    no_status = FeatureSpec(use_race_status=False, use_context=False, use_shift=False)
    assert no_status.covariate_names() == []
    base_only = FeatureSpec(use_context=False, use_shift=False)
    assert base_only.covariate_names() == ["track_status", "lap_status", "caution_laps", "pit_age"]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=60))
def test_property_pit_age_resets_and_increments(flags):
    pits = np.array(flags, dtype=bool)
    age = accumulate_age(pits)
    for i in range(len(age)):
        if pits[i]:
            assert age[i] == 0
        elif i > 0:
            assert age[i] == age[i - 1] + 1


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.booleans(), min_size=1, max_size=40),
    st.lists(st.booleans(), min_size=1, max_size=40),
)
def test_property_caution_laps_bounded_by_pit_age(pits, cautions):
    n = min(len(pits), len(cautions))
    pits = np.array(pits[:n], dtype=bool)
    cautions = np.array(cautions[:n], dtype=bool)
    caution_count = caution_laps_since_pit(pits, cautions)
    pit_age = accumulate_age(pits)
    assert np.all(caution_count <= pit_age + 1e-9)
    assert np.all(caution_count >= 0)
