"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package (legacy ``setup.py develop``
path via ``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
