# One-command entry points shared by CI (.github/workflows/ci.yml) and
# local development.  ``make test`` is the tier-1 verify command.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: help test test-fast lint format bench-smoke bench bench-train bench-decode bench-precision bench-serve bench-scenarios bench-learn bench-chaos chaos chaos-workers scenarios docs-check smoke-artifacts smoke-serve smoke-learn clean

help:
	@echo "Targets:"
	@echo "  test            tier-1 verify: full pytest (tests + benchmarks)"
	@echo "  test-fast       pytest over tests/ only"
	@echo "  lint            ruff check + format check"
	@echo "  format          ruff format (in place)"
	@echo "  bench           benchmark suite (pytest benchmarks/)"
	@echo "  bench-smoke     quick table5 experiment profile"
	@echo "  bench-train     training-throughput profile"
	@echo "  bench-decode    decode-throughput profile"
	@echo "  bench-precision float32/int8 precision tiers: speedup + parity profile"
	@echo "  bench-serve     serving-gateway overhead/isolation benchmark"
	@echo "  bench-scenarios scenario-engine throughput profile"
	@echo "  bench-learn     continuous-learning loop stage timings"
	@echo "  chaos           serving chaos gates: retries, SIGKILL+journal recovery, overload"
	@echo "  chaos-workers   worker-pool chaos gates: replica kill failover, hang detection"
	@echo "  scenarios       validate the shipped what-if workload matrix"
	@echo "  docs-check      markdown link check + scenario matrix validation"
	@echo "  smoke-artifacts cross-process artifact store round trip"
	@echo "  smoke-serve     repro-serve subprocess byte-identity smoke"
	@echo "  smoke-learn     repro-learn loop: retrain, shadow-eval, promote, rollback"
	@echo "  clean           remove caches and benchmark results"

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest tests -x -q

lint:
	ruff check src tests benchmarks examples
	ruff format --check src tests benchmarks examples

format:
	ruff format src tests benchmarks examples

bench-smoke:
	$(PYTHON) -m repro.experiments.runner table5 --profile quick

bench-train:
	$(PYTHON) -m repro.profiling.training

bench-decode:
	$(PYTHON) -m repro.profiling.decode

bench-precision:
	$(PYTHON) -m repro.profiling.precision

bench-serve:
	$(PYTHON) -m repro.profiling.server

bench-scenarios:
	$(PYTHON) -m repro.profiling.scenarios

bench-learn:
	$(PYTHON) -m repro.profiling.learning

# run the shipped what-if workload matrix in-process (results under
# benchmarks/results/scenarios/); forecast scoring needs --store
scenarios:
	$(PYTHON) -m repro.scenarios.runner benchmarks/scenarios/matrix.yaml --validate

# what the CI docs job runs: markdown link check + scenario validation
docs-check:
	$(PYTHON) tools/check_links.py
	$(PYTHON) -m repro.scenarios.runner benchmarks/scenarios/matrix.yaml --validate

bench:
	$(PYTHON) -m pytest benchmarks -q

# chaos harness: run the real repro-serve subprocess under injected faults
# and gate retry byte-identity, SIGKILL-and-recover journal replay, and
# bounded tail latency under admission-controlled overload
bench-chaos:
	rm -rf /tmp/repro-chaos
	$(PYTHON) -m repro.profiling.chaos --dir /tmp/repro-chaos

chaos: bench-chaos

# worker-pool chaos profile: repro-serve with workers=true, a server-side
# kill_worker fault SIGKILLing the replica mid-session (journal failover
# must be byte-identical) and a hang_worker SIGSTOP the heartbeat
# deadline must catch
chaos-workers:
	rm -rf /tmp/repro-chaos-workers
	$(PYTHON) -m repro.profiling.chaos --dir /tmp/repro-chaos-workers --profile workers

# cross-process artifact round trip (fit + save, then reload in a new process)
smoke-artifacts:
	rm -rf /tmp/repro-artifact-smoke
	$(PYTHON) -m repro.artifacts.smoke fit --dir /tmp/repro-artifact-smoke
	$(PYTHON) -m repro.artifacts.smoke check --dir /tmp/repro-artifact-smoke

# start repro-serve as a subprocess on a scratch store, then assert a client
# forecast and a lap-streamed session are byte-identical to the in-process path
smoke-serve:
	rm -rf /tmp/repro-serve-smoke
	$(PYTHON) -m repro.serving.smoke --dir /tmp/repro-serve-smoke

# the whole continuous-learning loop as repro-learn subprocesses: accumulate,
# retrain with a mid-job kill (resume must be bit-exact), shadow-eval, then
# promote/rollback over a live gateway (rollback must be byte-identical)
smoke-learn:
	rm -rf /tmp/repro-learn-smoke
	$(PYTHON) -m repro.learning.smoke --dir /tmp/repro-learn-smoke

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
