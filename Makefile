# One-command entry points shared by CI (.github/workflows/ci.yml) and
# local development.  ``make test`` is the tier-1 verify command.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast lint format bench-smoke bench bench-train bench-decode bench-serve bench-scenarios bench-chaos chaos scenarios docs-check smoke-artifacts smoke-serve clean

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest tests -x -q

lint:
	ruff check src tests benchmarks examples
	ruff format --check src tests benchmarks examples

format:
	ruff format src tests benchmarks examples

bench-smoke:
	$(PYTHON) -m repro.experiments.runner table5 --profile quick

bench-train:
	$(PYTHON) -m repro.profiling.training

bench-decode:
	$(PYTHON) -m repro.profiling.decode

bench-serve:
	$(PYTHON) -m repro.profiling.server

bench-scenarios:
	$(PYTHON) -m repro.profiling.scenarios

# run the shipped what-if workload matrix in-process (results under
# benchmarks/results/scenarios/); forecast scoring needs --store
scenarios:
	$(PYTHON) -m repro.scenarios.runner benchmarks/scenarios/matrix.yaml --validate

# what the CI docs job runs: markdown link check + scenario validation
docs-check:
	$(PYTHON) tools/check_links.py
	$(PYTHON) -m repro.scenarios.runner benchmarks/scenarios/matrix.yaml --validate

bench:
	$(PYTHON) -m pytest benchmarks -q

# chaos harness: run the real repro-serve subprocess under injected faults
# and gate retry byte-identity, SIGKILL-and-recover journal replay, and
# bounded tail latency under admission-controlled overload
bench-chaos:
	rm -rf /tmp/repro-chaos
	$(PYTHON) -m repro.profiling.chaos --dir /tmp/repro-chaos

chaos: bench-chaos

# cross-process artifact round trip (fit + save, then reload in a new process)
smoke-artifacts:
	rm -rf /tmp/repro-artifact-smoke
	$(PYTHON) -m repro.artifacts.smoke fit --dir /tmp/repro-artifact-smoke
	$(PYTHON) -m repro.artifacts.smoke check --dir /tmp/repro-artifact-smoke

# start repro-serve as a subprocess on a scratch store, then assert a client
# forecast and a lap-streamed session are byte-identical to the in-process path
smoke-serve:
	rm -rf /tmp/repro-serve-smoke
	$(PYTHON) -m repro.serving.smoke --dir /tmp/repro-serve-smoke

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
