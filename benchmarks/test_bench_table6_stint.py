"""Benchmark regenerating Table VI — rank change forecasting between pit stops.

Reuses the Table V model zoo (cached within the pytest session) and runs the
variable-horizon stint task.  Expected shape: CurRank has the worst SignAcc
(it cannot predict any change); the RankNet variants recover the direction
and size of the change best.
"""

from repro.experiments import TABLE5_MODELS, table6

from conftest import run_and_print


def test_bench_table6_stint(benchmark, bench_config):
    result = run_and_print(benchmark, table6, bench_config, models=TABLE5_MODELS)
    by_model = {row["model"]: row for row in result.rows}
    assert by_model["CurRank"]["num_stints"] > 0
    # CurRank predicts "no change" everywhere; any trained model that actually
    # predicts changes should match or beat its directional accuracy.
    assert by_model["RankNet-Oracle"]["sign_acc"] >= by_model["CurRank"]["sign_acc"]
