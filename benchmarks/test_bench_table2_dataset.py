"""Benchmark regenerating Table II — dataset summary."""

from repro.experiments import table2 as experiment

from conftest import run_and_print


def test_bench_table2(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
