"""Fleet-batched inference engine vs. the per-car forecast loop.

Reproduces the Fig. 9-style rolling-origin workload — a 20-car field, 100
Monte-Carlo samples per car, forecast at a run of consecutive origins —
and checks the two guarantees of the serving engine:

* the fleet-batched path is at least 5x faster than looping
  ``forecast_samples`` over the cars;
* given per-request RNG streams spawned from the same root seed, the two
  paths produce **byte-identical** forecasts.

The loop baseline is today's ``forecast_samples`` (a single-request engine
submit), which at this workload is itself ~2x faster than the original
per-car implementation it replaced (whose warm-up ran teacher forcing on a
``n_samples``-row batch): measured against a faithful re-implementation of
the original, fleet-exact is ~16x faster.  The 5x gate is therefore
conservative with respect to either baseline.
"""

import pathlib
import time

import numpy as np

from repro.models.deep.rankmodel import RankSeqModel
from repro.serving import FleetForecaster, ForecastRequest, spawn_request_rngs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_CARS = 20
N_SAMPLES = 100
N_ORIGINS = 4
ENCODER_LENGTH = 60
HORIZON = 2
N_COV = 9
MIN_SPEEDUP = 5.0


def _build_workload():
    rng = np.random.default_rng(0)
    n_laps = ENCODER_LENGTH + N_ORIGINS + HORIZON + 1
    targets = [
        np.clip(10 + np.cumsum(rng.normal(0, 0.8, n_laps)), 1, 33) for _ in range(N_CARS)
    ]
    covs = [rng.normal(size=(n_laps, N_COV)) for _ in range(N_CARS)]
    model = RankSeqModel(num_covariates=N_COV, hidden_dim=40, num_layers=2,
                         encoder_length=ENCODER_LENGTH, decoder_length=HORIZON, rng=0)
    origins = [ENCODER_LENGTH + i for i in range(N_ORIGINS)]
    return model, targets, covs, origins


def _window(arr, origin):
    return arr[origin + 1 - ENCODER_LENGTH : origin + 1]


def _run_loop(model, targets, covs, origins):
    future = np.zeros((HORIZON, N_COV))
    streams = spawn_request_rngs(np.random.default_rng(42), N_CARS * N_ORIGINS)
    results = []
    for j, origin in enumerate(origins):
        for car in range(N_CARS):
            results.append(
                model.forecast_samples(
                    _window(targets[car], origin), _window(covs[car], origin), future,
                    n_samples=N_SAMPLES, rng=streams[j * N_CARS + car],
                )
            )
    return results


def _run_fleet(model, targets, covs, origins, mode):
    future = np.zeros((HORIZON, N_COV))
    streams = spawn_request_rngs(np.random.default_rng(42), N_CARS * N_ORIGINS)
    engine = FleetForecaster(model, mode=mode)
    results = []
    for j, origin in enumerate(origins):
        results.extend(
            engine.submit(
                [
                    ForecastRequest(
                        _window(targets[car], origin), _window(covs[car], origin), future,
                        n_samples=N_SAMPLES, rng=streams[j * N_CARS + car],
                        key=car, origin=origin,
                    )
                    for car in range(N_CARS)
                ]
            )
        )
    return results


def test_bench_fleet_inference(benchmark):
    model, targets, covs, origins = _build_workload()
    n_forecasts = N_CARS * N_ORIGINS

    t0 = time.perf_counter()
    looped = _run_loop(model, targets, covs, origins)
    loop_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    exact = _run_fleet(model, targets, covs, origins, mode="exact")
    exact_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    carry = _run_fleet(model, targets, covs, origins, mode="carry")
    carry_s = time.perf_counter() - t0

    # byte-identical forecasts: same spawned streams -> same bits
    for a, b in zip(looped, exact):
        np.testing.assert_array_equal(a, b)

    rows = [
        ("per-car loop", loop_s, 1.0),
        ("fleet-exact", exact_s, loop_s / exact_s),
        ("fleet-carry", carry_s, loop_s / carry_s),
    ]
    lines = [
        f"Fleet inference, {N_CARS} cars x {N_SAMPLES} samples x {N_ORIGINS} origins "
        f"(encoder {ENCODER_LENGTH}, horizon {HORIZON})",
        f"{'strategy':<14}{'wall_ms':>10}{'fc/s':>10}{'speedup':>9}",
    ]
    for name, wall, speedup in rows:
        lines.append(
            f"{name:<14}{1e3 * wall:>10.1f}{n_forecasts / wall:>10.1f}{speedup:>9.2f}"
        )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fleet_inference.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)

    assert loop_s / exact_s >= MIN_SPEEDUP, (
        f"fleet-exact only {loop_s / exact_s:.1f}x faster than the per-car loop"
    )
    # carry must also clear the bar (it does strictly less work than exact;
    # a loose bound keeps this robust to noisy runners)
    assert loop_s / carry_s >= MIN_SPEEDUP, (
        f"fleet-carry only {loop_s / carry_s:.1f}x faster than the per-car loop"
    )

    # the benchmark statistic: one fleet-exact submit of the full field
    benchmark.pedantic(
        _run_fleet, args=(model, targets, covs, origins, "exact"), rounds=1, iterations=1
    )


def test_bench_fleet_carry_consistency(benchmark):
    """Carried states across consecutive origins: forecasts stay finite and
    the engine performs one incremental warm-up step per (car, origin)."""
    model, targets, covs, origins = _build_workload()
    engine = FleetForecaster(model, mode="carry")
    future = np.zeros((HORIZON, N_COV))

    def submit_all():
        streams = spawn_request_rngs(np.random.default_rng(7), N_CARS * N_ORIGINS)
        out = []
        for j, origin in enumerate(origins):
            out.extend(
                engine.submit(
                    [
                        ForecastRequest(
                            _window(targets[car], origin), _window(covs[car], origin),
                            future, n_samples=N_SAMPLES,
                            rng=streams[j * N_CARS + car], key=car, origin=origin,
                        )
                        for car in range(N_CARS)
                    ]
                )
            )
        return out

    results = benchmark.pedantic(submit_all, rounds=1, iterations=1)
    assert all(np.isfinite(r).all() for r in results)
    stats = engine.stats
    # first origin: full warm-up; every later origin: exactly one carried step
    assert stats["cache_carries"] == N_CARS * (N_ORIGINS - 1)
    assert stats["warmup_steps"] == (ENCODER_LENGTH - 1) + (N_ORIGINS - 1)
