"""Scenario engine benchmark gates: validation, byte-identity, throughput.

Three guarantees are gated on the shipped workload matrix
(``benchmarks/scenarios/matrix.yaml``, 6 scenarios / 33 races):

* **validation** — ``repro-scenarios --validate`` accepts every shipped
  spec, so the documented examples cannot rot (the CI docs job runs the
  same command);
* **byte-identity** — the per-race JSON documents written by the
  in-process runner and by the same workload streamed through a live
  gateway's ``POST /v1/scenarios`` are byte-for-byte equal under a
  shared seed (per-scenario RNG streams are derived from the request
  seed, never from process state);
* **throughput floors** — the sweep stays season-scale-cheap: the
  measured full matrix (simulation + served forecast scoring) runs in
  ~1.6 s in-process on the 1-core reference host, and streamed HTTP
  delivers its first race long before the sweep completes.  Gates are
  set far above the measured medians (PR 2/3/5 precedent) so they only
  catch real regressions, not runner noise.
"""

import json
import pathlib

from repro.profiling.scenarios import MATRIX, scenario_benchmark
from repro.profiling.server import build_serving_fixture
from repro.scenarios.runner import main as runner_main
from repro.serving.server import ForecastServer, ServerConfig

REPO = pathlib.Path(__file__).resolve().parents[1]
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# conservative floors of the measured medians (module docstring)
MIN_SIM_RACES_PER_S = 1.0          # measured ~40
MAX_MATRIX_WALL_S = 60.0           # measured ~1.6 in-process, ~1.8 http
MAX_FIRST_RESULT_FRACTION = 0.75   # streamed first race arrives well before the end


def test_bench_shipped_matrix_validates(capsys):
    assert runner_main([str(REPO / MATRIX), "--validate"]) == 0
    out = capsys.readouterr().out
    for name in (
        "caution_sweep", "driver_degradation", "alternate_tracks",
        "pit_strategy_grid", "season_championship", "forecast_check",
    ):
        assert name in out, out


def test_bench_runner_vs_gateway_byte_identity(tmp_path):
    """The same matrix run in-process and over HTTP writes identical JSON."""
    store = str(tmp_path / "store")
    build_serving_fixture(store)
    matrix = str(REPO / MATRIX)

    local_dir = tmp_path / "local"
    assert runner_main(
        [matrix, "--store", store, "--results", str(local_dir), "--quiet"]
    ) == 0

    http_dir = tmp_path / "http"
    config = ServerConfig(store=store, port=0, batch_window_ms=1.0)
    with ForecastServer(config) as server:
        assert runner_main(
            [
                matrix,
                "--gateway", f"127.0.0.1:{server.port}",
                "--results", str(http_dir),
                "--quiet",
            ]
        ) == 0

    local_files = sorted(p.name for p in local_dir.glob("*.json"))
    http_files = sorted(p.name for p in http_dir.glob("*.json"))
    assert local_files == http_files and len(local_files) == 6
    for name in local_files:
        local_bytes = (local_dir / name).read_bytes()
        http_bytes = (http_dir / name).read_bytes()
        assert local_bytes == http_bytes, f"{name} differs between in-process and HTTP"
        # and the documents really carry race results, not empty shells
        document = json.loads(local_bytes)
        assert document["races"] and document["summary"]["rows"]


def test_bench_scenario_throughput_and_streaming():
    measurements, identical = scenario_benchmark(matrix=str(REPO / MATRIX))
    assert identical, "in-process and http per-race documents diverged"
    by_path = {m.path: m for m in measurements}

    sim = by_path["simulate only"]
    local = by_path["in-process"]
    streamed = by_path["http streamed"]

    lines = [
        "Scenario engine benchmark (shipped matrix: 6 scenarios, 33 races,",
        "tiny DeepAR forecast scoring via the serving fixture; 1-core host)",
        f"{'path':<16}{'races':>7}{'wall_s':>9}{'first_s':>9}{'races/s':>9}",
    ]
    for m in measurements:
        row = m.as_row()
        lines.append(
            f"{row['path']:<16}{row['races']:>7}{row['wall_s']:>9.3f}"
            f"{row['first_result_s']:>9.3f}{row['races_per_s']:>9.2f}"
        )
    lines += [
        "byte-identity: every per-race document streamed over POST /v1/scenarios",
        "equals the in-process ScenarioEngine run under the shared seed, gated in",
        "test_bench_runner_vs_gateway_byte_identity and tests/scenarios/.",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scenarios.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print()
    print("\n".join(lines))

    assert sim.races / sim.wall_s > MIN_SIM_RACES_PER_S, lines
    assert local.wall_s < MAX_MATRIX_WALL_S, lines
    assert streamed.wall_s < MAX_MATRIX_WALL_S, lines
    # chunked streaming means the first race lands well before the sweep ends
    assert streamed.first_result_s < MAX_FIRST_RESULT_FRACTION * streamed.wall_s, lines
