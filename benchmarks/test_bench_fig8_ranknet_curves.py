"""Benchmark regenerating Fig. 8 — RankNet / Transformer forecast curves.

Same rolling two-lap forecast window as Fig. 2, but for the proposed models
(RankNet-Oracle/MLP and their Transformer-backbone counterparts).
"""

from repro.experiments import fig8

from conftest import run_and_print


def test_bench_fig8_ranknet_curves(benchmark, bench_config):
    result = run_and_print(benchmark, fig8, bench_config)
    models = {row["model"] for row in result.rows}
    assert models == {"Transformer-Oracle", "Transformer-MLP", "RankNet-Oracle", "RankNet-MLP"}
    for row in result.rows:
        assert row["window_mae"] >= 0.0
        assert 0.0 <= row["coverage_q10_q90"] <= 1.0
