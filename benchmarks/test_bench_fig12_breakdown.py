"""Benchmark regenerating Fig. 12 — CPU+VE operation breakdown."""

from repro.experiments import fig12 as experiment

from conftest import run_and_print


def test_bench_fig12(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
