"""Benchmark regenerating Fig. 7 — step-by-step RankNet model optimisation.

Runs the optimisation ladder (loss weighting, longer context, context
features, shift features) on the validation year and reports the MAE after
each step.  Expected shape: the final configuration is at least as good as
the basic model, with most of the gain on pit-covered laps.
"""

from repro.experiments import OPTIMIZATION_STEPS, fig7

from conftest import run_and_print


def test_bench_fig7_optimization(benchmark, bench_config):
    result = run_and_print(benchmark, fig7, bench_config)
    steps = [row["step"] for row in result.rows]
    assert steps == OPTIMIZATION_STEPS
    # structural checks: the ladder extends the context and adds covariates
    assert result.rows[2]["encoder_length"] > result.rows[0]["encoder_length"]
    covariate_counts = [row["covariates"] for row in result.rows]
    assert covariate_counts == sorted(covariate_counts)
    # soft accuracy check: individual steps are noisy at the bounded profile,
    # but the tuned model must stay in the same accuracy regime as the basic one
    first, last = result.rows[0], result.rows[-1]
    assert last["val_mae_all"] <= first["val_mae_all"] * 2.0
    assert all(row["val_mae_all"] > 0 for row in result.rows)
