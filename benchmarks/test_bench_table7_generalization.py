"""Benchmark regenerating Table VII — generalisation to other races.

Under the bounded benchmark profile only two representative models
(RankNet-MLP and RandomForest) and two events (Indy500, Texas) are used;
run with ``REPRO_PROFILE=full`` for the complete table.  Expected shape:
RankNet-MLP keeps a positive MAE improvement over CurRank on unseen
events, the RandomForest transfers poorly.
"""

import os

from repro.experiments import table7
from repro.experiments.generalization import DEFAULT_TABLE7_MODELS

from conftest import run_and_print


def test_bench_table7_generalization(benchmark, bench_config):
    if os.environ.get("REPRO_PROFILE", "quick").lower() == "full":
        models = DEFAULT_TABLE7_MODELS
        events = None
    else:
        models = ["RankNet-MLP", "RandomForest"]
        events = ["Indy500", "Texas"]
    result = run_and_print(benchmark, table7, bench_config, models=models, events=events)
    assert result.rows
    for row in result.rows:
        assert any(key.endswith("_by_indy500") for key in row)
        assert any(key.endswith("_by_same_event") for key in row)
