"""Fused sequence-parallel training engine vs. the stepwise BPTT loop.

Times one synthetic training epoch of the Table IV configuration (2-layer,
40-unit LSTM, 60-lap context, 2-lap decoder, batch 64) on both training
paths of :class:`repro.models.deep.rankmodel.RankSeqModel`:

* ``stepwise`` — the retained one-lap-at-a-time reference
  (``_forward_loss_stepwise`` over ``LSTMCell.step``/``step_backward``);
* ``fused`` — the full-sequence engine (``forward_sequence`` /
  ``backward_sequence``, fused ``MultiGaussianOutput`` head, vectorised
  ``gaussian_nll_seq``), plus its cache-free validation pass.

Correctness gate: per-parameter gradients and the loss of the fused path
must equal the stepwise path within 1e-10 on every batch of the epoch.

Throughput gates (conservative w.r.t. locally measured numbers so noisy CI
runners pass): fused training >= 1.1x stepwise, cache-free validation >=
1.8x the stepwise forward, and a full train+validation epoch >= 1.25x.
Measured on the dev box: ~1.3x training, ~2.9x validation, ~1.7x for the
combined epoch.  The issue's aspirational 4x epoch target is **not**
reachable at this configuration: at batch 64 the stepwise loop is already
BLAS-bound (the per-step GEMMs run at the same GFLOP/s as the fused ones),
so fusing eliminates the Python/ufunc dispatch overhead — a 1.3-2.9x win —
but cannot reduce the dominant GEMM and tanh work both paths share.  The
per-pass numbers are recorded in ``results/training.txt``.
"""

import pathlib
import time

import numpy as np

from repro.models.deep.rankmodel import RankSeqModel
from repro.profiling.training import synthetic_batches

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_BATCHES = 4
BATCH_SIZE = 64
ENCODER_LENGTH = 60
DECODER_LENGTH = 2
HIDDEN_DIM = 40
NUM_LAYERS = 2
N_COV = 9

MIN_TRAIN_SPEEDUP = 1.1
MIN_VAL_SPEEDUP = 1.8
MIN_EPOCH_SPEEDUP = 1.25
GRAD_PARITY = 1e-10


def _build_workload():
    rng = np.random.default_rng(0)
    batches = synthetic_batches(
        N_BATCHES, BATCH_SIZE, ENCODER_LENGTH + DECODER_LENGTH, N_COV, rng
    )
    model = RankSeqModel(
        num_covariates=N_COV,
        hidden_dim=HIDDEN_DIM,
        num_layers=NUM_LAYERS,
        encoder_length=ENCODER_LENGTH,
        decoder_length=DECODER_LENGTH,
        rng=0,
    )
    model.eval()
    return model, batches


def _epoch(model, batches, train_fn, val_fn):
    t0 = time.perf_counter()
    for batch in batches:
        model.zero_grad()
        train_fn(batch)
    train_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for batch in batches:
        val_fn(batch)
    return train_s, time.perf_counter() - t0


def test_bench_training_fused_vs_stepwise(benchmark):
    model, batches = _build_workload()
    instances = N_BATCHES * BATCH_SIZE

    # ------------------------------------------------------------------
    # correctness: fused loss and per-parameter gradients == stepwise
    # ------------------------------------------------------------------
    worst = 0.0
    for batch in batches:
        model.zero_grad()
        fused_loss = model.loss_and_backward(batch)
        fused_grads = {name: p.grad.copy() for name, p in model.named_parameters()}
        model.zero_grad()
        stepwise_loss = model._forward_loss_stepwise(batch, with_backward=True)
        assert abs(fused_loss - stepwise_loss) < GRAD_PARITY
        for name, p in model.named_parameters():
            delta = float(np.abs(fused_grads[name] - p.grad).max())
            worst = max(worst, delta)
            assert delta < GRAD_PARITY, f"{name}: fused/stepwise gradient delta {delta:.2e}"

    # ------------------------------------------------------------------
    # throughput: one train + validation epoch per path (best of 3)
    # ------------------------------------------------------------------
    def fused_epoch():
        return _epoch(model, batches, model.loss_and_backward, model.validation_loss)

    def stepwise_epoch():
        return _epoch(
            model,
            batches,
            lambda b: model._forward_loss_stepwise(b, with_backward=True),
            lambda b: model._forward_loss_stepwise(b, with_backward=False),
        )

    fused_epoch()  # warm-up (BLAS initialisation, allocator)
    stepwise_runs = [stepwise_epoch() for _ in range(3)]
    fused_runs = [fused_epoch() for _ in range(3)]
    step_train = min(r[0] for r in stepwise_runs)
    step_val = min(r[1] for r in stepwise_runs)
    fused_train = min(r[0] for r in fused_runs)
    fused_val = min(r[1] for r in fused_runs)
    train_speedup = step_train / fused_train
    val_speedup = step_val / fused_val
    epoch_speedup = (step_train + step_val) / (fused_train + fused_val)

    rows = [
        ("stepwise train", step_train, 1.0),
        ("fused train", fused_train, train_speedup),
        ("stepwise val", step_val, 1.0),
        ("fused val", fused_val, val_speedup),
        ("stepwise epoch", step_train + step_val, 1.0),
        ("fused epoch", fused_train + fused_val, epoch_speedup),
    ]
    lines = [
        f"Training engine, Table IV config: {NUM_LAYERS}x{HIDDEN_DIM} LSTM, "
        f"encoder {ENCODER_LENGTH}, decoder {DECODER_LENGTH}, "
        f"{N_BATCHES} batches x {BATCH_SIZE} windows",
        f"worst fused-vs-stepwise parameter gradient delta: {worst:.3e}",
        f"{'pass':<16}{'wall_ms':>10}{'windows/s':>12}{'speedup':>9}",
    ]
    for name, wall, speedup in rows:
        lines.append(
            f"{name:<16}{1e3 * wall:>10.1f}{instances / wall:>12.1f}{speedup:>9.2f}"
        )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "training.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)

    assert train_speedup >= MIN_TRAIN_SPEEDUP, (
        f"fused training only {train_speedup:.2f}x faster than stepwise"
    )
    assert val_speedup >= MIN_VAL_SPEEDUP, (
        f"cache-free validation only {val_speedup:.2f}x faster than stepwise"
    )
    assert epoch_speedup >= MIN_EPOCH_SPEEDUP, (
        f"fused epoch only {epoch_speedup:.2f}x faster than stepwise"
    )

    # benchmark statistic: one fused train+validation epoch
    benchmark.pedantic(fused_epoch, rounds=1, iterations=1)


def test_bench_training_gru_backbone_parity(benchmark):
    """The GRU backbone rides the same fused engine: parity + a smoke timing."""
    rng = np.random.default_rng(1)
    batches = synthetic_batches(2, 32, 30, N_COV, rng)
    model = RankSeqModel(
        num_covariates=N_COV,
        hidden_dim=24,
        num_layers=2,
        encoder_length=28,
        decoder_length=2,
        rng=1,
        backbone="gru",
    )
    model.eval()
    for batch in batches:
        model.zero_grad()
        fused_loss = model.loss_and_backward(batch)
        fused_grads = {name: p.grad.copy() for name, p in model.named_parameters()}
        model.zero_grad()
        stepwise_loss = model._forward_loss_stepwise(batch, with_backward=True)
        assert abs(fused_loss - stepwise_loss) < GRAD_PARITY
        for name, p in model.named_parameters():
            assert float(np.abs(fused_grads[name] - p.grad).max()) < GRAD_PARITY, name

    def fused_pass():
        for batch in batches:
            model.zero_grad()
            model.loss_and_backward(batch)

    benchmark.pedantic(fused_pass, rounds=1, iterations=1)
