"""Fused Monte-Carlo decode engine vs. the retained stepwise reference.

Two guarantees are gated on the Table V fleet configuration (33 cars x 100
Monte-Carlo samples, 2-layer 40-unit LSTM):

* **byte-identity** — the fused block-RNG decode (``decode="fused"``)
  reproduces the stepwise per-lap reference (``decode="stepwise"``, the
  pre-fusion ``run_group`` loop kept verbatim) bit for bit, in both
  ``exact`` and ``carry`` warm-up modes;
* **speedup** — the fused decode phase is no slower on the Table V shape
  and measurably faster on the decode-heavy shapes (the Fig. 9 long
  horizon and the strategy-sweep fan-out), with the measured breakdown
  written to ``benchmarks/results/decode.txt``.

The issue's headline target for this engine was a 3x decode speedup at the
Table V shape.  Like the training engine's 4x target (see
``test_bench_training.py``), that is unreachable on a single-core
BLAS-bound host: the per-step cost there is dominated by the recurrent
``stable_matmul`` GEMMs and the dense transcendentals, which the two paths
share bit-for-bit by construction — the fused engine can only delete the
Python-level RNG loops, per-lap allocations and masked sigmoid scatters
around them.  Those deletions are what the decode-heavy gates measure
(~1.3-1.5x here; larger on multi-core hosts where the shared GEMMs shrink
but the Python overhead does not).  The gates below are set at conservative
floors of the measured medians so they stay robust on noisy runners.
"""

import pathlib

import numpy as np

from repro.models.deep.rankmodel import RankSeqModel
from repro.profiling.decode import decode_breakdown
from repro.serving import FleetForecaster, ForecastRequest, spawn_request_rngs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_CARS = 33
N_SAMPLES = 100
N_ORIGINS = 3
ENCODER_LENGTH = 60
HORIZON = 2
N_COV = 9

# conservative floors of the measured medians (see module docstring); the
# Table V shape is GEMM-bound so its fused ratio hovers around parity
# (0.94-1.06x observed across runs of this host) — the gate only catches a
# real regression, not timing noise
MAX_TABLEV_SLOWDOWN = 1.20
MIN_DECODE_HEAVY_SPEEDUP = 1.10


def _build_workload(horizon=HORIZON, n_origins=N_ORIGINS):
    rng = np.random.default_rng(0)
    n_laps = ENCODER_LENGTH + n_origins + horizon + 1
    targets = [
        np.clip(10 + np.cumsum(rng.normal(0, 0.8, n_laps)), 1, 33) for _ in range(N_CARS)
    ]
    covs = [rng.normal(size=(n_laps, N_COV)) for _ in range(N_CARS)]
    model = RankSeqModel(num_covariates=N_COV, hidden_dim=40, num_layers=2,
                         encoder_length=ENCODER_LENGTH, decoder_length=horizon, rng=0)
    origins = [ENCODER_LENGTH + i for i in range(n_origins)]
    return model, targets, covs, origins


def _run(model, targets, covs, origins, mode, decode, horizon=HORIZON):
    engine = FleetForecaster(model, mode=mode, decode=decode)
    future = np.zeros((horizon, N_COV))
    streams = spawn_request_rngs(np.random.default_rng(42), N_CARS * len(origins))
    results = []
    for j, origin in enumerate(origins):
        results.extend(
            engine.submit(
                [
                    ForecastRequest(
                        targets[car][origin + 1 - ENCODER_LENGTH : origin + 1],
                        covs[car][origin + 1 - ENCODER_LENGTH : origin + 1],
                        future, n_samples=N_SAMPLES,
                        rng=streams[j * N_CARS + car], key=car, origin=origin,
                    )
                    for car in range(N_CARS)
                ]
            )
        )
    return results


def test_bench_decode_byte_identity(benchmark):
    """Fused == stepwise bit for bit on the Table V fleet, both modes."""
    model, targets, covs, origins = _build_workload()

    def check_all():
        for mode in ("exact", "carry"):
            stepwise = _run(model, targets, covs, origins, mode, "stepwise")
            fused = _run(model, targets, covs, origins, mode, "fused")
            for a, b in zip(stepwise, fused):
                assert a.shape == b.shape == (N_SAMPLES, HORIZON)
                np.testing.assert_array_equal(a, b)
        return True

    assert benchmark.pedantic(check_all, rounds=1, iterations=1)


def test_bench_decode_speedup(benchmark):
    """Measured decode-phase breakdown + the conservative speedup gates."""
    rows = [m.as_row() for m in benchmark.pedantic(
        decode_breakdown, kwargs=dict(repeats=3), rounds=1, iterations=1
    )]

    lines = [
        "Decode engine breakdown (2x40 LSTM, encoder 60; decode phase only, "
        "median of 3 interleaved runs)",
        "fused == stepwise byte-identical in exact and carry modes "
        "(gated in test_bench_decode_byte_identity)",
        f"{'workload':<20}{'decode':<10}{'warmup_ms':>11}{'decode_ms':>11}{'speedup':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<20}{row['decode']:<10}{row['warmup_ms']:>11.1f}"
            f"{row['decode_ms']:>11.1f}{row['speedup_vs_stepwise']:>9.2f}"
        )
    lines.append(
        "note: the issue's 3x Table V target is GEMM/transcendental-bound-unreachable "
        "on a 1-core host — both paths share those kernels bit-for-bit; the fused "
        "gains come from the deleted Python RNG loops, per-lap allocations and "
        "masked scatters, which grow with horizon and request count."
    )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "decode.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)

    speedups = {
        (row["workload"], row["decode"]): row["speedup_vs_stepwise"] for row in rows
    }
    tablev = speedups[("tableV 33x100 h2", "fused")]
    assert tablev >= 1.0 / MAX_TABLEV_SLOWDOWN, (
        f"fused decode regressed on the Table V shape: {tablev:.2f}x"
    )
    for workload in ("fig9   33x100 h10", "sweep  462x5  h10"):
        got = speedups[(workload, "fused")]
        assert got >= MIN_DECODE_HEAVY_SPEEDUP, (
            f"fused decode only {got:.2f}x on {workload!r} "
            f"(gate {MIN_DECODE_HEAVY_SPEEDUP}x)"
        )
