"""Benchmark regenerating Fig. 10 — training speed vs batch size."""

from repro.experiments import fig10 as experiment

from conftest import run_and_print


def test_bench_fig10(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
