"""Benchmark regenerating Fig. 9 — impact of the prediction length.

Sweeps the forecast horizon and reports each model's MAE improvement over
CurRank.  Under the bounded profile a subset of models and horizons is
used; the full profile sweeps 2-8 laps for all six models.  Expected shape:
the RankNet variants keep a positive improvement as the horizon grows.
"""

import os

from repro.experiments import fig9
from repro.experiments.prediction_length import DEFAULT_FIG9_MODELS

from conftest import run_and_print


def test_bench_fig9_prediction_length(benchmark, bench_config):
    if os.environ.get("REPRO_PROFILE", "quick").lower() == "full":
        models = DEFAULT_FIG9_MODELS
        lengths = (2, 4, 6, 8)
    else:
        models = ["RankNet-Oracle", "RankNet-MLP", "XGBoost", "RandomForest"]
        lengths = (2, 4, 6)
    result = run_and_print(
        benchmark, fig9, bench_config, models=models, prediction_lengths=lengths
    )
    assert [row["prediction_length"] for row in result.rows] == list(lengths)
    # CurRank's own error grows with the horizon
    currank = [row["currank_mae"] for row in result.rows]
    assert currank[-1] > currank[0]
