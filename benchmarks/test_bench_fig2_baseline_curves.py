"""Benchmark regenerating Fig. 2 — baseline forecasts around a pit stop.

Produces the rolling two-lap-ahead forecast curves (observed, median, 90%
quantile) of SVM, RandomForest, ARIMA and DeepAR for a car whose rank moves
through a pit cycle, mirroring the paper's qualitative comparison of the
baselines' failure modes.
"""

from repro.experiments import fig2

from conftest import run_and_print


def test_bench_fig2_baseline_curves(benchmark, bench_config):
    result = run_and_print(benchmark, fig2, bench_config)
    assert {row["model"] for row in result.rows} == {"SVM", "RandomForest", "ARIMA", "DeepAR"}
    assert "observed" in result.series and "lap" in result.series
    assert len(result.series["observed"]) > 10
