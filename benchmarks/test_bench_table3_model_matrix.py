"""Benchmark regenerating Table III — model capability matrix."""

from repro.experiments import table3 as experiment

from conftest import run_and_print


def test_bench_table3(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
