"""Benchmark regenerating Table V — short-term rank position forecasting.

Trains the full model zoo (CurRank, ARIMA, RandomForest, SVM, XGBoost,
DeepAR, RankNet-Joint/MLP/Oracle) on the simulated Indy500 training seasons
and evaluates the two-lap forecasting task on the test season, reporting
Top1Acc / MAE / 50-risk / 90-risk over the All, Normal and PitStop-covered
lap sets.  The expected shape matches the paper: CurRank is hard to beat on
normal laps, the gains of RankNet-MLP/Oracle come from the pit windows.
"""

import numpy as np

from repro.experiments import TABLE5_MODELS, table5

from conftest import run_and_print


def test_bench_table5_short_term(benchmark, bench_config):
    result = run_and_print(benchmark, table5, bench_config, models=TABLE5_MODELS)
    assert [row["model"] for row in result.rows] == TABLE5_MODELS
    by_model = {row["model"]: row for row in result.rows}
    # Paper-shape checks (soft): the oracle decomposition improves the
    # pit-covered MAE over the persistence baseline.
    assert by_model["RankNet-Oracle"]["pit_mae"] < by_model["CurRank"]["pit_mae"]
    assert np.isfinite(by_model["RankNet-MLP"]["all_mae"])
