"""Benchmark regenerating Fig. 11 — roofline chart of the LSTM kernels."""

from repro.experiments import fig11 as experiment

from conftest import run_and_print


def test_bench_fig11(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
