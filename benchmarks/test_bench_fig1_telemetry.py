"""Benchmark regenerating Fig. 1 — telemetry example."""

from repro.experiments import fig1 as experiment

from conftest import run_and_print


def test_bench_fig1(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
