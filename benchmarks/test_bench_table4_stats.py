"""Benchmark regenerating Table IV — dataset statistics and hyper-parameters."""

from repro.experiments import table4 as experiment

from conftest import run_and_print


def test_bench_table4(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
