"""Benchmark regenerating Fig. 4 — pit stop statistics."""

from repro.experiments import fig4 as experiment

from conftest import run_and_print


def test_bench_fig4(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
