"""Benchmark regenerating Table I — feature schema."""

from repro.experiments import table1 as experiment

from conftest import run_and_print


def test_bench_table1(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
