"""Serving gateway benchmark gates: byte-identity and overhead floors.

Three guarantees are gated on a shared seeded workload (tiny DeepAR, 48
single-car requests, 20 Monte-Carlo samples each):

* **byte-identity** — the samples served over HTTP (including via the
  micro-batch scheduler under 3 concurrent clients) are bitwise equal to
  the same requests submitted to the in-process ``ForecastService``;
* **overhead floors** — the process boundary stays cheap and micro-
  batching does not regress: conservative bounds of the medians measured
  on this single-core host (see ``benchmarks/results/serving.txt``);
* **cross-model isolation** — in worker mode a long strategy sweep on one
  model's replica never blocks single-request forecasts on another model
  (the ``blocking_ratio`` ceiling; measured ~0.03 vs ~1.0 under the old
  global gateway lock — ``benchmarks/results/serving-isolation.txt``).

Measured baseline on the 1-core reference host (median of 3): direct
batched 0.12 ms/req, direct sequential 0.80 ms/req, HTTP sequential
2.2 ms/req, HTTP 3 clients coalesced 1.8-1.9 ms/req at 0-2 ms windows.
The coalescing win over sequential HTTP is modest *at this model size*
because a single-request fleet pass (~0.8 ms) is cheaper than one HTTP
round trip (~1.4 ms); the in-process batched-vs-sequential ratio (~6x)
is what the scheduler recovers as models grow.  The gates below are set
far above the measured medians so they only catch real regressions, not
runner noise (PR 2/PR 3 precedent).
"""

import pathlib
import threading

import numpy as np

from repro.artifacts import ArtifactStore
from repro.profiling.server import (
    MODEL_NAME,
    build_serving_fixture,
    gateway_benchmark,
    isolation_benchmark,
)
from repro.serving import ForecastClient, ForecastService
from repro.serving.server import ForecastServer, ServerConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# conservative floors/ceilings of the measured medians (module docstring)
MAX_HTTP_OVERHEAD_MS_PER_REQUEST = 25.0   # measured ~1.4
MAX_COALESCED_VS_SEQUENTIAL_HTTP = 2.0    # measured ~0.85
MIN_DIRECT_BATCHED_SPEEDUP = 2.0          # measured ~6.6
MAX_ISOLATION_BLOCKING_RATIO = 0.5        # measured ~0.03


def _request_batch(forecaster, series, seeds, origin=20, n_samples=9, horizon=2):
    return [
        ForecastClient.request(
            MODEL_NAME,
            forecaster._history_target(series, origin + i),
            forecaster._history_covariates(series, origin + i),
            forecaster._future_covariates(series, origin + i, horizon),
            n_samples=n_samples,
            rng=seed,
            key=(series.race_id, series.car_id, i),
            origin=origin + i,
        )
        for i, seed in enumerate(seeds)
    ]


def test_bench_gateway_byte_identity_under_concurrent_clients(tmp_path):
    """HTTP + micro-batching (3 clients) == direct in-process submission."""
    root = str(tmp_path / "store")
    _, series, _ = build_serving_fixture(root)
    service = ForecastService(ArtifactStore(root))
    forecaster = service.load(MODEL_NAME).forecaster

    # two physically distinct request sets: an integer seed pins the stream,
    # but each ForecastRequest materialises its own Generator whose state is
    # consumed by whichever path runs it
    def build_shards():
        return [
            _request_batch(forecaster, series[0], seeds=range(100 * c, 100 * c + 4))
            for c in range(3)
        ]

    reference = [service.submit(shard) for shard in build_shards()]
    shards = build_shards()

    config = ServerConfig(store=root, port=0, preload=[MODEL_NAME], batch_window_ms=25.0)
    with ForecastServer(config) as server:
        results: dict = {}
        errors: list = []
        barrier = threading.Barrier(3)

        def run(client_id):
            try:
                client = ForecastClient(port=server.port)
                barrier.wait()
                results[client_id] = client.forecast(shards[client_id])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(c,)) for c in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        stats = server.gateway.scheduler_stats()

    for client_id in range(3):
        for got, expected in zip(results[client_id], reference[client_id]):
            np.testing.assert_array_equal(got, expected)
    # the 25 ms window really did coalesce traffic from distinct connections
    assert stats["coalesced_batches"] >= 1, stats


def test_bench_gateway_overhead_floors():
    measurements = gateway_benchmark(windows_ms=(0.0, 2.0, 10.0), repeats=3)
    by_path = {}
    for m in measurements:
        by_path.setdefault(m.path, []).append(m)

    direct_batched = by_path["direct batched"][0]
    direct_sequential = by_path["direct sequential"][0]
    http_sequential = by_path["http sequential"][0]
    coalesced = min(m.ms_per_request for m in by_path["http 3 clients"])

    lines = [
        "Serving gateway benchmark (tiny DeepAR, 48 seeded requests, 20 samples, h2;",
        "median of 3 runs per path; 1-core host)",
        f"{'path':<20}{'clients':>8}{'window_ms':>11}{'wall_s':>9}{'ms/req':>8}",
    ]
    for m in measurements:
        row = m.as_row()
        lines.append(
            f"{row['path']:<20}{row['clients']:>8}{row['window_ms']:>11.1f}"
            f"{row['wall_s']:>9.3f}{row['ms_per_request']:>8.2f}"
        )
    lines += [
        "byte-identity: HTTP (+ scheduler, 3 concurrent clients) == direct submit,",
        "gated in test_bench_gateway_byte_identity_under_concurrent_clients and",
        "tests/serving/{test_scheduler,test_server}.py.",
        "note: at this model size one fleet pass (~0.8 ms) costs less than one HTTP",
        "round trip (~1.4 ms), so cross-client coalescing only trims the boundary",
        "overhead here; the in-process batched-vs-sequential ratio above is the",
        "throughput micro-batching recovers as the per-pass model cost grows.",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serving.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print()
    print("\n".join(lines))

    overhead = http_sequential.ms_per_request - direct_sequential.ms_per_request
    assert overhead < MAX_HTTP_OVERHEAD_MS_PER_REQUEST, (overhead, lines)
    assert coalesced < MAX_COALESCED_VS_SEQUENTIAL_HTTP * http_sequential.ms_per_request, lines
    assert (
        direct_sequential.ms_per_request
        > MIN_DIRECT_BATCHED_SPEEDUP * direct_batched.ms_per_request
    ), lines


def test_bench_cross_model_isolation_in_worker_mode():
    """Tentpole gate: a slow sweep on model A never blocks forecasts on B.

    Worker mode, one replica subprocess per model.  The old global gateway
    lock serialized everything — a B probe landing mid-sweep waited out the
    whole sweep (ratio ~1.0).  Per-model workers keep the worst probe to
    CPU-contention noise (measured ~0.03 of the sweep wall on the 1-core
    reference host); the 0.5 ceiling only catches a real return to
    cross-model blocking.
    """
    isolation = isolation_benchmark()
    lines = [
        "Cross-model isolation (worker mode: RankNet sweep on A vs single-request",
        "DeepAR forecasts on B; 1-core host)",
    ] + [f"{key:<24}{value:.4f}" for key, value in isolation.items()]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serving-isolation.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    print()
    print("\n".join(lines))

    assert isolation["probes_during_sweep"] >= 1, isolation
    assert isolation["blocking_ratio"] < MAX_ISOLATION_BLOCKING_RATIO, isolation
