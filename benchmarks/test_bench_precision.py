"""Low-precision compute tier: speedup floors and error-bounded parity.

Gates the precision knob threaded through the kernels, the fleet engine
and the wire protocol (``precision="float64" | "float32" | "int8"``):

* **speedup** — the float32 tier's fused decode phase is at least
  :data:`MIN_F32_SPEEDUP` faster than the float64 reference on the
  decode-heavy Fig. 9 shape (33 cars x 100 samples, horizon 10), and the
  int8 tier is no slower than float32 (int8 is a *storage* format:
  weights dequantize once into float32 GEMM operands, so its runtime
  tracks the float32 tier within timing noise);
* **error-bounded parity** — the low tiers are explicitly NOT
  byte-identical to float64; instead every tier consumes identical RNG
  streams (the noise term is drawn in float64 everywhere), so
  trajectories line up one-to-one and both the worst-case per-trajectory
  rank deviation and the worst-case deviation of per-request sample
  means are gated against the documented per-family tolerances below.

Measured medians on this host: float32 ~1.9-2.1x across all three
workload shapes (the BLAS-bound GEMMs move half the bytes), int8 within
noise of float32; parity max|Δrank| ~6e-6 (float32) and ~3e-2 (int8).
The gates are conservative floors/ceilings of those numbers so they stay
robust on noisy runners.  The breakdown is written to
``benchmarks/results/precision.txt`` and the machine-readable sidecar to
``benchmarks/results/BENCH_precision.json``.
"""

import pathlib

from repro.profiling.precision import precision_breakdown
from repro.profiling.report import write_bench_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FIG9 = "fig9   33x100 h10"

# speedup floors (conservative: measured float32 medians sit near 2x)
MIN_F32_SPEEDUP = 1.30
# int8 dequantizes into the same float32 GEMMs — allow timing noise only
MIN_INT8_VS_F32 = 0.85

# documented per-family parity tolerances (ranks) vs. the float64 tier,
# on the profiling model family (2x40 LSTM, untuned weights, fused decode)
TOLERANCES = {
    # (max per-trajectory |Δrank|, max per-request |Δ sample mean|)
    "float64": (0.0, 0.0),  # byte-identical by contract
    "float32": (1e-3, 1e-4),
    "int8": (0.5, 0.25),
}


def test_bench_precision_speedup_and_parity(benchmark):
    """Measured precision-tier breakdown + speedup floors + parity gates."""
    rows = [
        m.as_row()
        for m in benchmark.pedantic(
            precision_breakdown, kwargs=dict(repeats=3), rounds=1, iterations=1
        )
    ]

    lines = [
        "Precision tiers (2x40 LSTM, encoder 60; fused decode phase, "
        "median of 3 interleaved runs)",
        "float64 is the byte-identical reference; float32/int8 are "
        "error-bounded (identical RNG streams, no byte-identity claim)",
        f"{'workload':<20}{'precision':<10}{'wall_ms':>9}{'speedup':>9}"
        f"{'max|drank|':>12}{'max|dmean|':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<20}{row['precision']:<10}{row['wall_ms']:>9.1f}"
            f"{row['speedup']:>9.2f}{row['max_abs_rank_diff']:>12.2e}"
            f"{row['max_mean_rank_diff']:>12.2e}"
        )
    lines.append(
        "note: int8 is a storage format (per-output-channel symmetric scales, "
        "dequantized once into float32 GEMM operands), so its decode runtime "
        "tracks the float32 tier; its parity budget is wider because the "
        "weights themselves are rounded."
    )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "precision.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    write_bench_json("precision", rows, extra={"decode": "fused"})

    by_key = {(row["workload"], row["precision"]): row for row in rows}

    # --- speedup floors on the decode-heavy Fig. 9 shape ---------------
    f32_speedup = by_key[(FIG9, "float32")]["speedup"]
    assert f32_speedup >= MIN_F32_SPEEDUP, (
        f"float32 decode only {f32_speedup:.2f}x float64 on {FIG9!r} "
        f"(gate {MIN_F32_SPEEDUP}x)"
    )
    int8_vs_f32 = (
        by_key[(FIG9, "float32")]["wall_ms"] / by_key[(FIG9, "int8")]["wall_ms"]
    )
    assert int8_vs_f32 >= MIN_INT8_VS_F32, (
        f"int8 decode {int8_vs_f32:.2f}x float32 on {FIG9!r} "
        f"(gate {MIN_INT8_VS_F32}x; int8 shares the float32 GEMMs)"
    )

    # --- error-bounded parity on every workload shape ------------------
    for row in rows:
        max_traj, max_mean = TOLERANCES[row["precision"]]
        assert row["max_abs_rank_diff"] <= max_traj, (
            f"{row['precision']} per-trajectory deviation "
            f"{row['max_abs_rank_diff']:.2e} ranks exceeds the documented "
            f"{max_traj} tolerance on {row['workload']!r}"
        )
        assert row["max_mean_rank_diff"] <= max_mean, (
            f"{row['precision']} sample-mean deviation "
            f"{row['max_mean_rank_diff']:.2e} ranks exceeds the documented "
            f"{max_mean} tolerance on {row['workload']!r}"
        )
