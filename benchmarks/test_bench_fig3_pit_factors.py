"""Benchmark regenerating Fig. 3 — pit-stop factor taxonomy."""

from repro.experiments import fig3 as experiment

from conftest import run_and_print


def test_bench_fig3(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
