"""Benchmark regenerating Fig. 5 — RankNet architecture."""

from repro.experiments import fig5 as experiment

from conftest import run_and_print


def test_bench_fig5(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
