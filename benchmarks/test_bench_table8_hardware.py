"""Benchmark regenerating Table VIII — hardware platforms."""

from repro.experiments import table8 as experiment

from conftest import run_and_print


def test_bench_table8(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
