"""Benchmark regenerating Fig. 6 — per-race data distribution."""

from repro.experiments import fig6 as experiment

from conftest import run_and_print


def test_bench_fig6(benchmark, bench_config):
    result = run_and_print(benchmark, experiment, bench_config)
    assert result.rows
