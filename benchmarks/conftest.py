"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper through
``repro.experiments`` and prints its rows.  The ``bench_config`` fixture
selects a bounded configuration so the whole suite completes in minutes on
a laptop CPU; export ``REPRO_PROFILE=full`` to run the paper-scale profile
instead (hours).  Trained models and simulated races are cached inside
``repro.experiments.common`` for the lifetime of the pytest process, so
benchmarks that share a model zoo (Table V/VI, Fig. 2/8/9) only pay the
training cost once.

Each regenerated table is printed to the terminal (outside pytest's output
capture, so it is visible in a plain ``pytest benchmarks/ --benchmark-only``
run) and also written to ``benchmarks/results/<experiment>.txt``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import full_config, quick_config

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_ACTIVE_CAPSYS = None


def _bench_profile():
    if os.environ.get("REPRO_PROFILE", "quick").lower() == "full":
        return full_config()
    # bounded benchmark profile: small enough to finish the full suite quickly,
    # large enough that the qualitative shape of each table/figure holds
    return quick_config().with_overrides(
        epochs=12,
        max_train_windows=2500,
        origin_stride=8,
        n_samples=20,
        ml_origin_stride=5,
        ml_max_instances=6000,
        rf_estimators=30,
        gbm_estimators=60,
    )


@pytest.fixture(scope="session")
def bench_config():
    return _bench_profile()


@pytest.fixture(autouse=True)
def _expose_capsys(capsys):
    """Let ``run_and_print`` emit tables outside pytest's output capture."""
    global _ACTIVE_CAPSYS
    _ACTIVE_CAPSYS = capsys
    yield
    _ACTIVE_CAPSYS = None


def run_and_print(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark, print and persist its table."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    text = result.to_text()
    RESULTS_DIR.mkdir(exist_ok=True)
    filename = result.experiment_id.lower().replace(" ", "").replace(".", "") + ".txt"
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")
    if _ACTIVE_CAPSYS is not None:
        with _ACTIVE_CAPSYS.disabled():
            print()
            print(text)
    else:  # pragma: no cover - plain invocation outside pytest
        print()
        print(text)
    return result
