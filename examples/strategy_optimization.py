#!/usr/bin/env python
"""Pit-strategy optimisation with a trained RankNet (repro.strategy).

The paper's conclusion argues that a probabilistic rank forecaster "enables
racing strategy optimizations".  This example shows that workflow end to
end: train RankNet on simulated Indy500 seasons, pick a car mid-race that
is approaching its pit window, and ask the model *when* it should stop —
each candidate ("pit in k laps") is expressed as a counterfactual race-
status plan and evaluated by Monte-Carlo forecasting the rank at the end of
the window.

Run with::

    python examples/strategy_optimization.py
"""

from __future__ import annotations

import numpy as np

from repro.data import build_race_features
from repro.evaluation import format_table
from repro.models import RankNetForecaster
from repro.simulation import simulate_race
from repro.strategy import PitStrategyOptimizer


def main() -> None:
    print("1. simulating training data and the race to strategise for...")
    train = [
        s
        for year in (2016, 2017, 2018)
        for s in build_race_features(simulate_race("Indy500", year, seed=900 + year))
    ]
    race_series = build_race_features(simulate_race("Indy500", 2019, seed=900 + 2019))

    print("2. training RankNet (oracle covariate input — it will consume our plans)...")
    model = RankNetForecaster(
        variant="oracle", encoder_length=30, decoder_length=2, hidden_dim=40,
        epochs=10, lr=3e-3, max_train_windows=2000, seed=4,
    )
    model.fit(train)

    # pick a mid-field car that is deep into its stint around mid-race
    candidate = None
    for series in race_series:
        origin = 90
        if origin + 20 >= len(series):
            continue
        pit_age = series.covariate("pit_age")[origin]
        if 20 <= pit_age <= 35 and 4 <= series.rank[origin] <= 18:
            candidate = (series, origin)
            break
    if candidate is None:
        candidate = (race_series[5], 90)
    series, origin = candidate

    print(f"3. strategy question for car {series.car_id} at lap {series.laps[origin]}: "
          f"rank {int(series.rank[origin])}, {int(series.covariate('pit_age')[origin])} laps since the last stop")
    optimizer = PitStrategyOptimizer(model, n_samples=80)
    outcomes = optimizer.evaluate(series, origin, horizon=16, earliest=2, latest=14, step=3)
    print(format_table([o.as_row() for o in outcomes],
                       title="Forecasted outcome of each candidate stop lap"))
    best = optimizer.best(series, origin, horizon=16, earliest=2, latest=14, step=3)
    print(f"   -> recommended: pit in {best.pit_in_laps} laps "
          f"(expected rank {best.expected_final_rank:.1f}, P(gain) {best.p_gain:.2f})")

    print("4. what actually happened in the simulated race:")
    future_pits = np.where(series.is_pit[origin + 1 : origin + 17])[0]
    if future_pits.size:
        print(f"   the car really pitted {int(future_pits[0]) + 1} laps later; "
              f"rank after the window: {int(series.rank[min(origin + 16, len(series) - 1)])}")
    else:
        print("   the car did not pit inside the window; "
              f"rank after the window: {int(series.rank[min(origin + 16, len(series) - 1)])}")

    print("5. rolling sweep: re-asking the question at every lap of the pit window...")
    # one carry-mode engine batch covers every (origin, pit-in-k) candidate:
    # the warm-up is shared across candidates and carried between origins
    origins = range(origin, origin + 8)
    points = optimizer.sweep(series, origins, horizon=16, earliest=2, latest=14, step=3)
    print(format_table(
        [
            {
                "lap": series.laps[p.origin],
                "rank": int(p.current_rank),
                "pit_in": p.best.pit_in_laps,
                "expected_rank": p.best.expected_final_rank,
                "p_gain": p.best.p_gain,
            }
            for p in points
        ],
        title="Recommended stop lap as the race unfolds",
    ))
    stats = model.fleet_engine("carry").stats
    print(f"   engine: {stats['warmup_shared']} warm-ups shared across candidates, "
          f"{stats['cache_carries']} carried origin advances, "
          f"{stats['warmup_steps']} teacher-forcing steps total")


if __name__ == "__main__":
    main()
