#!/usr/bin/env python
"""Serving over HTTP: start a gateway from a config, stream a live session.

Run with::

    python examples/serving_server.py

The script fits a small DeepAR forecaster, registers it in a scratch
artifact store, writes a ``repro-serve`` JSON config, and starts the HTTP
gateway in-process (the same server ``repro-serve --config conf.json``
runs standalone).  A stdlib :class:`repro.serving.ForecastClient` then
drives the ``v1`` wire API:

1. list the model catalog (``GET /v1/models``);
2. submit a seeded batch forecast (``POST /v1/forecast``) and verify it is
   byte-identical to the in-process engine;
3. open a live session (``POST /v1/sessions``) and replay a simulated race
   as a timing feed — one lap of telemetry per request — printing the
   whole-field forecast as each origin becomes final.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import replace

import numpy as np

from repro.artifacts import ArtifactStore
from repro.data import build_race_features
from repro.models import DeepARForecaster
from repro.serving import ForecastClient, ForecastService
from repro.serving.server import ForecastServer, ServerConfig
from repro.simulation import RaceSimulator, track_for_year

MODEL = "deepar-demo"


def main() -> None:
    scratch = tempfile.mkdtemp(prefix="repro-serve-demo-")

    print("1. fitting a small DeepAR forecaster and registering its artifact...")
    track = replace(track_for_year("Indy500", 2018), total_laps=60, num_cars=10)
    race = RaceSimulator(track, event="Indy500", year=2019, seed=7).run()
    series = build_race_features(race)
    model = DeepARForecaster(
        encoder_length=20, decoder_length=2, hidden_dim=16,
        epochs=2, batch_size=32, max_train_windows=400, seed=1,
    )
    model.fit(series[:6])
    ArtifactStore(scratch).save_model(MODEL, model)

    config_path = os.path.join(scratch, "conf.json")
    with open(config_path, "w", encoding="utf-8") as fh:
        json.dump(
            {"store": ".", "port": 0, "preload": [MODEL], "batch_window_ms": 2.0},
            fh, indent=2,
        )
    print(f"   wrote {config_path} (run standalone: repro-serve --config {config_path})")

    print("2. starting the HTTP gateway...")
    with ForecastServer(ServerConfig.from_file(config_path)) as server:
        client = ForecastClient(port=server.port)
        catalog = client.models()
        print(f"   serving {len(catalog)} model(s) on port {server.port}: "
              f"{[entry['name'] for entry in catalog]}")

        print("3. batch forecast over the wire vs the in-process engine...")
        def batch():
            return [
                ForecastClient.request(
                    MODEL,
                    model._history_target(series[0], origin),
                    model._history_covariates(series[0], origin),
                    model._future_covariates(series[0], origin, 2),
                    n_samples=50,
                    rng=100 + origin,         # explicit per-request seed
                    key=(series[0].race_id, series[0].car_id),
                    origin=origin,
                )
                for origin in (25, 30, 35)
            ]

        over_http = client.forecast(batch())
        direct = ForecastService(ArtifactStore(scratch)).submit(batch())
        identical = all(np.array_equal(a, b) for a, b in zip(over_http, direct))
        print(f"   3 forecasts x {over_http[0].shape} samples; byte-identical: {identical}")

        print("4. streaming the race into a server-side live session...")
        session = client.open_session(
            MODEL, horizon=2, n_samples=50, min_history=12, rng=0,
            start=20, stop=40, event=race.event, year=race.year,
        )
        for lap, records in race.iter_laps():
            for origin, forecasts in session.lap(lap, records):
                leaders = sorted(
                    forecasts, key=lambda car: float(np.median(forecasts[car][:, -1]))
                )[:3]
                print(
                    f"   lap {lap:>3}: origin {origin:>3} final -> "
                    f"{len(forecasts)} cars, forecast podium {leaders}"
                )
        tail = session.close()
        print(f"   close() flushed {len(tail)} held-back origin(s)")


if __name__ == "__main__":
    main()
