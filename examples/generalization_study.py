#!/usr/bin/env python
"""Cross-event generalisation study (the paper's Table VII).

Trains RankNet-MLP and a RandomForest baseline on simulated Indy500 data
and evaluates both on a *different* superspeedway (Texas), reporting the
MAE improvement over CurRank on the pit-covered laps — the setting where
the paper shows deep models transfer across tracks while the classical
regressor degrades badly.

Run with::

    python examples/generalization_study.py
"""

from __future__ import annotations

from repro.data import build_race_features
from repro.evaluation import LapSet, ShortTermEvaluator, format_table
from repro.models import CurRankForecaster, RandomForestForecaster, RankNetForecaster
from repro.simulation import simulate_race


def improvement_over_currank(model, test_series, evaluator) -> float:
    model_mae = evaluator.evaluate(model, test_series).metrics[LapSet.PIT_COVERED.value]["mae"]
    base_mae = evaluator.evaluate(CurRankForecaster(), test_series).metrics[LapSet.PIT_COVERED.value]["mae"]
    return (base_mae - model_mae) / base_mae


def main() -> None:
    print("1. simulating the source event (Indy500) and the target event (Texas)...")
    indy_train = [
        s
        for year in (2016, 2017, 2018)
        for s in build_race_features(simulate_race("Indy500", year, seed=500 + year))
    ]
    texas_train = [
        s
        for year in (2016, 2017)
        for s in build_race_features(simulate_race("Texas", year, seed=600 + year))
    ]
    texas_test = build_race_features(simulate_race("Texas", 2018, seed=600 + 2018))

    print("2. training RankNet-MLP and RandomForest on Indy500 and on Texas...")
    def make_ranknet():
        return RankNetForecaster(variant="mlp", encoder_length=30, epochs=10, lr=3e-3,
                                 max_train_windows=2000, seed=2)

    def make_forest():
        return RandomForestForecaster(n_estimators=30, origin_stride=4, max_instances=6000, seed=2)

    models = {
        ("RankNet-MLP", "Indy500"): make_ranknet().fit(indy_train),
        ("RankNet-MLP", "Texas"): make_ranknet().fit(texas_train),
        ("RandomForest", "Indy500"): make_forest().fit(indy_train),
        ("RandomForest", "Texas"): make_forest().fit(texas_train),
    }

    print("3. evaluating two-lap forecasts on Texas-2018 (pit-covered laps)...")
    evaluator = ShortTermEvaluator(horizon=2, n_samples=25, origin_stride=6)
    rows = []
    for model_name in ("RankNet-MLP", "RandomForest"):
        rows.append(
            {
                "model": model_name,
                "mae_improvement_trained_on_Indy500": improvement_over_currank(
                    models[(model_name, "Indy500")], texas_test, evaluator
                ),
                "mae_improvement_trained_on_Texas": improvement_over_currank(
                    models[(model_name, "Texas")], texas_test, evaluator
                ),
            }
        )
    print(format_table(rows, title="MAE improvement over CurRank on Texas-2018 (pit-covered laps)"))
    print("Expected shape (paper Table VII): RankNet-MLP keeps a positive improvement even when")
    print("trained on a different event, while the RandomForest transfers poorly.")


if __name__ == "__main__":
    main()
