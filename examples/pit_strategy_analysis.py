#!/usr/bin/env python
"""Pit-stop strategy analysis with the PitModel (the paper's §III-A / Fig. 4).

The RankNet decomposition hinges on pit stops being *predictable enough*:
stints are bounded by the fuel window, normal stops cluster around a target
stint length, and caution periods trigger opportunistic stops.  This example

1. simulates several Indy500 seasons and reproduces the Fig. 4 statistics
   (stint-length distributions and the rank cost of normal vs caution pits),
2. trains the probabilistic PitModel and inspects how its forecast of the
   next stop sharpens as a stint progresses, and
3. uses the model to compare candidate strategies for a car mid-race —
   the kind of "what if we pit N laps later" question a race engineer asks.

Run with::

    python examples/pit_strategy_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.data import build_race_features, pit_statistics
from repro.evaluation import format_table
from repro.models import PitModelMLP
from repro.simulation import simulate_race


def main() -> None:
    print("1. simulating Indy500 2015-2019 and extracting pit statistics (Fig. 4)...")
    races = [simulate_race("Indy500", year, seed=100 + year) for year in range(2015, 2020)]
    series = [s for race in races for s in build_race_features(race)]
    stats = pit_statistics(series)
    rows = []
    for kind in ("normal", "caution"):
        stints = stats[kind]["stint_lengths"]
        changes = stats[kind]["rank_changes"]
        rows.append(
            {
                "pit_type": kind,
                "count": int(stints.size),
                "stint_mean": float(stints.mean()),
                "stint_std": float(stints.std()),
                "stint_max": int(stints.max()),
                "rank_cost_mean": float(changes.mean()),
            }
        )
    print(format_table(rows, title="Pit-stop statistics (simulated Indy500)"))
    print("   -> normal stints are bell-shaped and bounded by the ~50-lap fuel window;")
    print("      caution pits are more dispersed and cost fewer positions.\n")

    print("2. training the probabilistic PitModel...")
    pit_model = PitModelMLP(hidden=(32, 32), epochs=40, seed=0)
    pit_model.fit(series)

    print("   laps-to-next-pit forecast vs tire age (rank-10 car, green flag):")
    rows = []
    for pit_age in (5, 15, 25, 35, 45):
        features = np.array([0.0, float(pit_age), 0.0, 10.0, 0.0])
        params = pit_model.predict_distribution(features)
        rows.append(
            {
                "pit_age": pit_age,
                "expected_laps_to_pit": float(params.mu[0]),
                "uncertainty_sigma": float(params.sigma[0]),
            }
        )
    print(format_table(rows))
    print("   -> the deeper into the stint, the sooner (and more certainly) the next stop.\n")

    print("3. strategy what-if: probability the next stop happens within N laps")
    features_now = np.array([2.0, 30.0, 0.0, 10.0, 0.0])  # 30-lap-old tires, 2 caution laps seen
    draws = pit_model.sample_laps_to_pit(features_now, n_samples=2000)
    rows = []
    for window in (3, 5, 10, 15, 20):
        rows.append(
            {
                "within_laps": window,
                "probability": float(np.mean(draws <= window)),
            }
        )
    print(format_table(rows, title="P(next pit within N laps | pit_age=30)"))


if __name__ == "__main__":
    main()
