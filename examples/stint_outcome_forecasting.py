#!/usr/bin/env python
"""Stint outcome forecasting (TaskB of the paper, Table VI).

Between two pit stops a car's rank can swing by many positions depending on
when the rest of the field stops.  This example trains the RankNet-Oracle
and a classical SVR baseline, then, for every stint of the held-out race,
forecasts the rank change from one pit stop to the next and reports the
TaskB metrics (SignAcc, MAE, quantile risks).  It finishes by printing the
full probabilistic outcome distribution for one example stint — the output
a strategist would use to weigh an aggressive vs conservative stop.

Run with::

    python examples/stint_outcome_forecasting.py
"""

from __future__ import annotations

import numpy as np

from repro.data import build_race_features
from repro.evaluation import StintEvaluator, format_table
from repro.models import CurRankForecaster, RankNetForecaster, SVRForecaster
from repro.simulation import simulate_race


def main() -> None:
    print("1. simulating training (2016-2018) and test (2019) Indy500 races...")
    train_races = [simulate_race("Indy500", year, seed=300 + year) for year in (2016, 2017, 2018)]
    test_race = simulate_race("Indy500", 2019, seed=300 + 2019)
    train_series = [s for race in train_races for s in build_race_features(race)]
    test_series = build_race_features(test_race)

    print("2. training the models (RankNet-Oracle, SVR, CurRank baseline)...")
    ranknet = RankNetForecaster(
        variant="oracle", encoder_length=30, hidden_dim=40, epochs=10, lr=3e-3,
        max_train_windows=2000, seed=1,
    )
    ranknet.fit(train_series)
    svr = SVRForecaster(origin_stride=4, max_instances=4000, seed=1)
    svr.fit(train_series)
    models = {"CurRank": CurRankForecaster(), "SVM": svr, "RankNet-Oracle": ranknet}

    print("3. evaluating TaskB (rank change between consecutive pit stops)...")
    evaluator = StintEvaluator(n_samples=40)
    rows = []
    for name, model in models.items():
        result = evaluator.evaluate(model, test_series)
        rows.append({"model": name, "num_stints": result.num_stints, **result.as_row()})
    print(format_table(rows, title="TaskB on simulated Indy500-2019"))
    print("   -> CurRank cannot predict any change; RankNet recovers both the sign and size.\n")

    print("4. probabilistic outcome of one example stint")
    # pick a stint of a mid-field car
    example = None
    for series in test_series:
        tasks = evaluator.stint_tasks(series)
        if tasks and 5 <= series.rank[tasks[0].start_index] <= 20:
            example = (series, tasks[0])
            break
    if example is None:
        print("   (no suitable stint found)")
        return
    series, stint = example
    origin = stint.start_index - 1
    horizon = stint.end_index - origin
    forecast = ranknet.forecast(series, origin, horizon, n_samples=300)
    change = forecast.samples[:, -1] - series.rank[origin]
    true_change = series.rank[stint.end_index] - series.rank[origin]
    print(f"   car {series.car_id}, stint of {stint.length} laps starting at lap {series.laps[origin]}")
    print(f"   true rank change: {true_change:+.0f}")
    print(f"   forecast median : {np.median(change):+.1f}")
    print(f"   P(gain positions) = {float(np.mean(change < -0.5)):.2f}, "
          f"P(hold) = {float(np.mean(np.abs(change) <= 0.5)):.2f}, "
          f"P(lose) = {float(np.mean(change > 0.5)):.2f}")


if __name__ == "__main__":
    main()
