#!/usr/bin/env python
"""Quickstart: simulate a race, train RankNet-MLP, forecast two laps ahead.

Run with::

    python examples/quickstart.py

The script simulates a few Indy500 seasons, fits the proposed RankNet-MLP
model (cause-effect decomposition: a probabilistic PitModel plus an LSTM
encoder-decoder RankModel), compares its two-lap forecast against the naive
CurRank baseline on the held-out season and prints both the metrics and an
example probabilistic forecast.
"""

from __future__ import annotations

import numpy as np

from repro.data import build_race_features
from repro.evaluation import ShortTermEvaluator, format_table
from repro.models import CurRankForecaster, RankNetForecaster
from repro.simulation import simulate_race


def main() -> None:
    print("1. simulating Indy500 seasons (training: 2016-2018, test: 2019)...")
    train_races = [simulate_race("Indy500", year, seed=year) for year in (2016, 2017, 2018)]
    test_race = simulate_race("Indy500", 2019, seed=2019)

    train_series = [s for race in train_races for s in build_race_features(race)]
    test_series = build_race_features(test_race)
    print(f"   {len(train_series)} training car-series, {len(test_series)} test car-series")

    print("2. training RankNet-MLP (PitModel + LSTM encoder-decoder)...")
    model = RankNetForecaster(
        variant="mlp",
        encoder_length=30,
        decoder_length=2,
        hidden_dim=40,
        epochs=10,
        lr=3e-3,
        max_train_windows=2000,
        seed=0,
    )
    model.fit(train_series)
    history = model.history_
    print(f"   trained for {history.num_epochs} epochs, best val loss {history.best_val_loss:.3f}")

    print("3. evaluating the two-lap forecasting task against CurRank...")
    evaluator = ShortTermEvaluator(horizon=2, n_samples=30, origin_stride=8)
    rows = []
    for name, m in (("CurRank", CurRankForecaster()), ("RankNet-MLP", model)):
        result = evaluator.evaluate(m, test_series)
        rows.append(
            {
                "model": name,
                "mae_all": result.metric("all", "mae"),
                "mae_pit_covered": result.metric("pit_covered", "mae"),
                "top1_acc": result.metric("all", "top1_acc"),
                "risk90": result.metric("all", "risk90"),
            }
        )
    print(format_table(rows, title="Two-lap forecasting, Indy500-2019 (simulated)"))

    print("4. probabilistic forecast example")
    series = test_series[4]
    origin = 80
    forecast = model.forecast(series, origin=origin, horizon=5, n_samples=100)
    print(f"   car {series.car_id} at lap {series.laps[origin]} (rank {int(series.rank[origin])})")
    print(f"   observed next 5 ranks : {series.rank[origin + 1 : origin + 6].astype(int).tolist()}")
    print(f"   forecast median       : {np.round(forecast.median(), 1).tolist()}")
    print(f"   forecast 10%-90% band : {np.round(forecast.quantile(0.1), 1).tolist()}"
          f" .. {np.round(forecast.quantile(0.9), 1).tolist()}")


if __name__ == "__main__":
    main()
