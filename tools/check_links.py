#!/usr/bin/env python
"""Markdown link checker for the docs tree (stdlib only).

Scans markdown files for inline links and images, and fails if any
relative target does not exist on disk or any referenced anchor has no
matching heading. External links (http/https/mailto) are not fetched —
CI must not depend on the network — only their syntax is accepted.

Usage::

    python tools/check_links.py [FILE.md ...]

With no arguments, checks ``README.md`` and every ``*.md`` under
``docs/`` (the CI docs job's configuration).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, Tuple

REPO = pathlib.Path(__file__).resolve().parents[1]

#: inline links/images: [text](target) / ![alt](target); titles allowed
LINK = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
EXTERNAL = ("http://", "https://", "mailto:")


def anchor_slug(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    anchors = set()
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        match = HEADING.match(line)
        if match:
            anchors.add(anchor_slug(match.group(1)))
    return anchors


def links_of(path: pathlib.Path) -> List[str]:
    links = []
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        links.extend(LINK.findall(line))
    return links


def check_file(path: pathlib.Path) -> List[Tuple[str, str]]:
    """Returns ``(link, problem)`` pairs for every broken link in one file."""
    problems = []
    for link in links_of(path):
        if link.startswith(EXTERNAL):
            continue
        target_part, _, fragment = link.partition("#")
        if not target_part:  # same-file anchor
            if fragment and anchor_slug(fragment) not in anchors_of(path):
                problems.append((link, "no such heading in this file"))
            continue
        target = (path.parent / target_part).resolve()
        if not target.exists():
            problems.append((link, "target does not exist"))
            continue
        if fragment and target.suffix == ".md":
            if anchor_slug(fragment) not in anchors_of(target):
                problems.append((link, f"no heading '#{fragment}' in {target_part}"))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="markdown files (default: README.md, docs/*.md)")
    args = parser.parse_args(argv)

    if args.files:
        files = [pathlib.Path(name) for name in args.files]
    else:
        files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

    broken = 0
    for path in files:
        if not path.exists():
            print(f"{path}: file not found")
            broken += 1
            continue
        for link, problem in check_file(path):
            print(f"{path.relative_to(REPO) if path.is_absolute() else path}: ({link}) {problem}")
            broken += 1
    checked = ", ".join(str(p.relative_to(REPO) if p.is_absolute() else p) for p in files)
    if broken:
        print(f"{broken} broken link(s) across: {checked}")
        return 1
    print(f"all links ok: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
